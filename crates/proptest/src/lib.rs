//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests rely on: the
//! [`proptest!`] macro, `prop_assert*` macros, [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_filter`, [`Just`], [`any`],
//! numeric range strategies, tuple strategies, and
//! [`collection::vec`]. Differences from upstream:
//!
//! * cases are generated from a fixed per-case seed, so runs are fully
//!   deterministic (upstream randomizes and persists regressions);
//! * there is no shrinking — a failing case panics with the assert
//!   message (inputs are printed via the panic payload only);
//! * `prop_assert*` are plain `assert*` (they panic instead of returning
//!   `Err`), which is observably identical under the test harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test-case source of randomness.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic generator for one numbered case of one test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }
}

/// A generator of test-case values. `generate` returns `None` when a
/// `prop_filter` rejects the draw; the harness retries a fresh draw.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and draws
    /// from that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Rejects values failing `pred` (the harness redraws).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.base.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        (self.f)(self.base.generate(rng)?).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, i64, i32, f64);

/// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * 2f64.powi(e)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length drawn from `size`
    /// (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Draws from `strategy`, retrying filter rejections; panics if the
/// filter rejects 1000 consecutive draws.
pub fn generate_one<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    for _ in 0..1000 {
        if let Some(v) = strategy.generate(rng) {
            return v;
        }
    }
    panic!("proptest strategy rejected 1000 consecutive draws (filter too strict)");
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, collection, generate_one, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                let ($($pat,)*) =
                    ($($crate::generate_one(&($strat), &mut __rng),)*);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1e-3f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1e-3..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in collection::vec(any::<bool>(), 4),
            w in collection::vec(0usize..5, 1..7),
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..7).contains(&w.len()));
            prop_assert!(w.iter().all(|&e| e < 5));
        }

        #[test]
        fn combinators_compose(
            n in (2usize..6)
                .prop_flat_map(|n| (Just(n), collection::vec(any::<u32>(), n)))
                .prop_map(|(n, v)| (n, v.len()))
                .prop_filter("lens agree", |(n, l)| n == l),
        ) {
            prop_assert_eq!(n.0, n.1);
        }

        #[test]
        fn mut_bindings_work(mut data in collection::vec(0usize..100, 1..20)) {
            data.sort_unstable();
            prop_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = 0usize..1000;
        assert_eq!(generate_one(&s, &mut a), generate_one(&s, &mut b));
    }
}
