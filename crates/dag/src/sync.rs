//! Executable schedule construction with synchronization insertion
//! (paper Table III).
//!
//! A [`Traversal`] fixes the issue order and stream bindings; this module
//! lowers it to the concrete host-issued instruction sequence a CUDA+MPI
//! process would execute:
//!
//! | edge `u → v`              | inserted                                   |
//! |---------------------------|--------------------------------------------|
//! | CPU → anything            | nothing (CPU ops are synchronous)          |
//! | GPU_i → CPU               | `cudaEventRecord` → `cudaEventSynchronize` |
//! | GPU_i → GPU_i             | nothing (same-stream FIFO)                 |
//! | GPU_i → GPU_j (i ≠ j)     | `cudaEventRecord` → `cudaStreamWaitEvent`  |
//!
//! The first two insertions correspond to the `CER-after-*` / `CES-b4-*`
//! decision operations already present in the traversal. The cross-stream
//! `cudaStreamWaitEvent` depends on the successor's stream binding, so it
//! is glued here, immediately before its target kernel; when no usable
//! event record has been issued yet, a glued record is emitted as well.

use crate::graph::VertexId;
use crate::op::OpSpec;
use crate::space::{DecisionKind, DecisionSpace, OpId, Placement, StreamId, Traversal};
use crate::CommKey;
use crate::CostKey;

/// Identifies a CUDA event within one [`Schedule`].
pub type EventId = usize;

/// A concrete host-issued instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleAction {
    /// Synchronous CPU computation.
    CpuWork(CostKey),
    /// Asynchronous kernel launch into `stream`.
    KernelLaunch {
        /// Target stream.
        stream: StreamId,
        /// Cost-model key for the kernel body duration.
        cost: CostKey,
    },
    /// Post one `MPI_Isend` per peer of the pattern.
    PostSends(CommKey),
    /// Post one `MPI_Irecv` per peer of the pattern.
    PostRecvs(CommKey),
    /// Block until all sends under the key complete.
    WaitSends(CommKey),
    /// Block until all receives under the key complete.
    WaitRecvs(CommKey),
    /// Blocking collective reduction across all ranks.
    AllReduce(CommKey),
    /// `cudaEventRecord(event, stream)`.
    EventRecord {
        /// Recorded event.
        event: EventId,
        /// Stream whose current tail the event captures.
        stream: StreamId,
    },
    /// `cudaEventSynchronize` on each event in turn (CPU blocks).
    EventSync {
        /// Events that must all have completed before the CPU proceeds.
        events: Vec<EventId>,
    },
    /// `cudaStreamWaitEvent(stream, event)`: `stream` stalls until `event`.
    StreamWaitEvent {
        /// Waiting stream.
        stream: StreamId,
        /// Event being waited on.
        event: EventId,
    },
    /// Device-wide synchronization (the artificial `End`): the program is
    /// complete once every stream has drained and every pending MPI
    /// operation would have been consumed.
    DeviceSync,
}

/// A named instruction in the executable sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledItem {
    /// Display name: decision-op name, or auto-generated for glued
    /// synchronization (`CSWE-b4-*`, `CER-after-*(glued)`).
    pub name: String,
    /// The instruction.
    pub action: ScheduleAction,
    /// Decision op this item came from; `None` for glued items and the
    /// terminal `DeviceSync`.
    pub source: Option<OpId>,
}

/// The executable lowering of one traversal: the exact host-issue sequence
/// including all inserted synchronization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Host-issued instructions, in order. The final item is always the
    /// `DeviceSync` of the artificial `End` vertex.
    pub items: Vec<ScheduledItem>,
    /// Number of distinct CUDA events allocated.
    pub num_events: usize,
    /// Number of distinct streams referenced.
    pub num_streams: usize,
}

impl Schedule {
    /// Names of all items, for debugging and golden tests.
    pub fn names(&self) -> Vec<&str> {
        self.items.iter().map(|i| i.name.as_str()).collect()
    }
}

/// Lowers a complete traversal into its executable [`Schedule`].
///
/// # Panics
///
/// Panics if `t` is not a valid complete traversal of `space` (use
/// [`DecisionSpace::validate`] first for untrusted input).
pub fn build_schedule(space: &DecisionSpace, t: &Traversal) -> Schedule {
    assert_eq!(t.steps.len(), space.num_ops(), "traversal must be complete");
    let mut b = ScheduleBuilder::new(space);
    for &p in &t.steps {
        b.push_step(p);
    }
    b.into_schedule()
}

/// Per-step undo record of [`ScheduleBuilder::push_step`].
#[derive(Debug, Clone, Copy)]
struct StepUndo {
    op: OpId,
    items_len: usize,
    num_events: usize,
    max_stream: usize,
}

/// Incremental, prefix-monotonic schedule lowering.
///
/// Each lowered step's items depend only on earlier placements
/// (predecessor ops are always placed first, and event reuse checks only
/// whether the record has *already* been issued), so the lowering can be
/// grown one placement at a time and rewound with [`ScheduleBuilder::
/// pop_step`]. Pushing the steps of a complete traversal in order yields
/// — via [`ScheduleBuilder::into_schedule`] — the exact same
/// [`Schedule`] as [`build_schedule`], bit for bit; this is what lets
/// space-level analyses share lowering (and downstream lint state)
/// between schedules with a common traversal prefix.
pub struct ScheduleBuilder<'a> {
    space: &'a DecisionSpace,
    /// Event ids pre-allocated one per CER decision op, in op order —
    /// identical for every traversal of the space.
    event_of_cer: Vec<Option<EventId>>,
    items: Vec<ScheduledItem>,
    num_events: usize,
    max_stream: usize,
    /// Stream binding per placed GPU op (`None` otherwise).
    streams: Vec<Option<StreamId>>,
    /// Step index per placed op (`usize::MAX` when unplaced).
    positions: Vec<usize>,
    undo: Vec<StepUndo>,
}

impl<'a> ScheduleBuilder<'a> {
    /// Starts an empty lowering over `space`.
    pub fn new(space: &'a DecisionSpace) -> Self {
        let mut event_of_cer: Vec<Option<EventId>> = vec![None; space.num_ops()];
        let mut num_events = 0usize;
        for (op, d) in space.ops().iter().enumerate() {
            if matches!(d.kind, DecisionKind::CerAfter(_)) {
                event_of_cer[op] = Some(num_events);
                num_events += 1;
            }
        }
        ScheduleBuilder {
            space,
            event_of_cer,
            items: Vec::with_capacity(space.num_ops() + 4),
            num_events,
            max_stream: 0,
            streams: vec![None; space.num_ops()],
            positions: vec![usize::MAX; space.num_ops()],
            undo: Vec::with_capacity(space.num_ops()),
        }
    }

    /// Number of steps pushed so far.
    pub fn len(&self) -> usize {
        self.undo.len()
    }

    /// True when no step has been pushed.
    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    /// Items lowered so far (without the terminal `End`).
    pub fn items(&self) -> &[ScheduledItem] {
        &self.items
    }

    /// Events allocated so far (CER pre-allocation plus glued records).
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Streams referenced so far (always at least one, matching the
    /// complete lowering's `max_stream + 1`).
    pub fn num_streams(&self) -> usize {
        self.max_stream + 1
    }

    /// Lowers one placement, appending its glue and main items. Returns
    /// the range of items this step appended.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a valid next placement (its predecessors must
    /// already be pushed, exactly as in a valid traversal).
    pub fn push_step(&mut self, p: Placement) -> std::ops::Range<usize> {
        let idx = self.undo.len();
        self.undo.push(StepUndo {
            op: p.op,
            items_len: self.items.len(),
            num_events: self.num_events,
            max_stream: self.max_stream,
        });
        let from = self.items.len();
        let dag = self.space.dag();
        let d = &self.space.ops()[p.op];
        match d.kind {
            DecisionKind::Cpu(v) => {
                self.items.push(ScheduledItem {
                    name: d.name.clone(),
                    action: lower_cpu_spec(dag.vertex(v).spec.clone()),
                    source: Some(p.op),
                });
            }
            DecisionKind::Gpu(v) => {
                let stream = p.stream.expect("GPU placements carry a stream");
                self.max_stream = self.max_stream.max(stream);
                self.glue_cross_stream_waits(v, p.op, stream);
                let cost = match &dag.vertex(v).spec {
                    OpSpec::GpuKernel(c) => c.clone(),
                    other => unreachable!("GPU decision op lowered from {other:?}"),
                };
                self.items.push(ScheduledItem {
                    name: d.name.clone(),
                    action: ScheduleAction::KernelLaunch { stream, cost },
                    source: Some(p.op),
                });
                self.streams[p.op] = Some(stream);
            }
            DecisionKind::CerAfter(g) => {
                let stream = self.streams[g].expect("CER target is a placed GPU op");
                self.max_stream = self.max_stream.max(stream);
                self.items.push(ScheduledItem {
                    name: d.name.clone(),
                    action: ScheduleAction::EventRecord {
                        event: self.event_of_cer[p.op].expect("CER op has an event"),
                        stream,
                    },
                    source: Some(p.op),
                });
            }
            DecisionKind::CesBefore(_) => {
                let events: Vec<EventId> = self
                    .space
                    .op_preds(p.op)
                    .iter()
                    .map(|&cer| self.event_of_cer[cer].expect("CES preds are CER ops"))
                    .collect();
                self.items.push(ScheduledItem {
                    name: d.name.clone(),
                    action: ScheduleAction::EventSync { events },
                    source: Some(p.op),
                });
            }
        }
        self.positions[p.op] = idx;
        from..self.items.len()
    }

    /// Rewinds the most recent [`ScheduleBuilder::push_step`].
    ///
    /// # Panics
    ///
    /// Panics if no step has been pushed.
    pub fn pop_step(&mut self) {
        let u = self.undo.pop().expect("pop_step on an empty builder");
        self.items.truncate(u.items_len);
        self.num_events = u.num_events;
        self.max_stream = u.max_stream;
        self.positions[u.op] = usize::MAX;
        self.streams[u.op] = None;
    }

    /// Finishes the lowering: appends the terminal `End` device sync and
    /// returns the complete [`Schedule`].
    pub fn into_schedule(mut self) -> Schedule {
        self.items.push(end_item());
        Schedule {
            items: self.items,
            num_events: self.num_events,
            num_streams: self.max_stream + 1,
        }
    }

    /// Runs `f` against the complete [`Schedule`] of the current steps
    /// (terminal `End` appended) without cloning the item buffer, then
    /// restores the builder so further pushes and pops continue from the
    /// same state.
    pub fn with_complete_schedule<R>(&mut self, f: impl FnOnce(&Schedule) -> R) -> R {
        let mut items = std::mem::take(&mut self.items);
        items.push(end_item());
        let s = Schedule {
            items,
            num_events: self.num_events,
            num_streams: self.max_stream + 1,
        };
        let r = f(&s);
        let mut items = s.items;
        items.pop();
        self.items = items;
        r
    }

    /// Emits the Table III row-4 synchronization for every GPU
    /// predecessor of `v` bound to a different stream: a
    /// `cudaStreamWaitEvent` glued before the launch, reusing the
    /// predecessor's `CER-after-*` event when that record has already
    /// been issued, otherwise gluing a fresh record.
    fn glue_cross_stream_waits(&mut self, v: VertexId, v_op: OpId, stream: StreamId) {
        let dag = self.space.dag();
        for &u in dag.preds(v) {
            let Some(u_op) = self.space.op_of_vertex(u) else {
                continue;
            };
            let Some(u_stream) = self.streams[u_op] else {
                continue;
            };
            if u_stream == stream {
                continue; // same-stream FIFO order suffices
            }
            let event = match self.space.cer_of(u_op) {
                Some(cer) if self.positions[cer] != usize::MAX => {
                    self.event_of_cer[cer].expect("CER op has an event")
                }
                _ => {
                    // No usable record issued yet: glue one now. It
                    // captures u's stream at this point, which is at or
                    // after u itself, so the dependency is
                    // (conservatively) preserved.
                    let event = self.num_events;
                    self.num_events += 1;
                    self.items.push(ScheduledItem {
                        name: format!("CER-after-{}(glued)", self.space.ops()[u_op].name),
                        action: ScheduleAction::EventRecord {
                            event,
                            stream: u_stream,
                        },
                        source: None,
                    });
                    event
                }
            };
            self.items.push(ScheduledItem {
                name: format!("CSWE-b4-{}", self.space.ops()[v_op].name),
                action: ScheduleAction::StreamWaitEvent { stream, event },
                source: None,
            });
        }
    }
}

/// The terminal `End` item every complete schedule carries.
fn end_item() -> ScheduledItem {
    ScheduledItem {
        name: "End".into(),
        action: ScheduleAction::DeviceSync,
        source: None,
    }
}

fn lower_cpu_spec(spec: OpSpec) -> ScheduleAction {
    match spec {
        OpSpec::CpuWork(c) => ScheduleAction::CpuWork(c),
        OpSpec::PostSends(c) => ScheduleAction::PostSends(c),
        OpSpec::PostRecvs(c) => ScheduleAction::PostRecvs(c),
        OpSpec::WaitSends(c) => ScheduleAction::WaitSends(c),
        OpSpec::WaitRecvs(c) => ScheduleAction::WaitRecvs(c),
        OpSpec::AllReduce(c) => ScheduleAction::AllReduce(c),
        other => unreachable!("CPU decision op lowered from {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;
    use crate::op::{CommKey, CostKey};

    /// GPU kernel `k` feeding CPU op `c`, plus an independent GPU chain
    /// `g1 -> g2` to exercise the cross-stream glue path.
    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let k = b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        b.edge(k, c);
        b.edge(g1, g2);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn schedule_of(names: &[(&str, Option<usize>)]) -> Schedule {
        let sp = space();
        let t = sp.traversal_from_names(names).unwrap();
        build_schedule(&sp, &t)
    }

    #[test]
    fn gpu_to_cpu_gets_record_then_sync() {
        let s = schedule_of(&[
            ("k", Some(0)),
            ("CER-after-k", None),
            ("CES-b4-c", None),
            ("c", None),
            ("g1", Some(0)),
            ("g2", Some(0)),
        ]);
        let names = s.names();
        let rec = names.iter().position(|n| *n == "CER-after-k").unwrap();
        let sync = names.iter().position(|n| *n == "CES-b4-c").unwrap();
        let c = names.iter().position(|n| *n == "c").unwrap();
        assert!(rec < sync && sync < c);
        match &s.items[rec].action {
            ScheduleAction::EventRecord { stream, .. } => assert_eq!(*stream, 0),
            other => panic!("expected record, got {other:?}"),
        }
        match &s.items[sync].action {
            ScheduleAction::EventSync { events } => assert_eq!(events.len(), 1),
            other => panic!("expected sync, got {other:?}"),
        }
    }

    #[test]
    fn same_stream_gpu_chain_needs_no_wait() {
        let s = schedule_of(&[
            ("g1", Some(0)),
            ("g2", Some(0)),
            ("k", Some(0)),
            ("CER-after-k", None),
            ("CES-b4-c", None),
            ("c", None),
        ]);
        assert!(!s.names().iter().any(|n| n.starts_with("CSWE")));
    }

    #[test]
    fn cross_stream_gpu_chain_glues_record_and_wait() {
        let s = schedule_of(&[
            ("g1", Some(0)),
            ("g2", Some(1)),
            ("k", Some(0)),
            ("CER-after-k", None),
            ("CES-b4-c", None),
            ("c", None),
        ]);
        let names = s.names();
        let glued = names
            .iter()
            .position(|n| *n == "CER-after-g1(glued)")
            .unwrap();
        let wait = names.iter().position(|n| *n == "CSWE-b4-g2").unwrap();
        let g2 = names.iter().position(|n| *n == "g2").unwrap();
        assert!(glued < wait && wait < g2);
        match &s.items[wait].action {
            ScheduleAction::StreamWaitEvent { stream, event } => {
                assert_eq!(*stream, 1);
                // The glued record must target the same event.
                match &s.items[glued].action {
                    ScheduleAction::EventRecord {
                        event: e,
                        stream: rs,
                    } => {
                        assert_eq!(e, event);
                        assert_eq!(*rs, 0);
                    }
                    other => panic!("expected record, got {other:?}"),
                }
            }
            other => panic!("expected stream wait, got {other:?}"),
        }
    }

    #[test]
    fn schedule_ends_with_device_sync() {
        let s = schedule_of(&[
            ("g1", Some(0)),
            ("g2", Some(0)),
            ("k", Some(0)),
            ("CER-after-k", None),
            ("CES-b4-c", None),
            ("c", None),
        ]);
        assert_eq!(s.items.last().unwrap().action, ScheduleAction::DeviceSync);
        assert_eq!(s.items.last().unwrap().name, "End");
    }

    #[test]
    fn mpi_specs_lower_to_matching_actions() {
        let mut b = DagBuilder::new();
        let key = CommKey::new("x");
        let ps = b.add("PostSends", OpSpec::PostSends(key.clone()));
        let pr = b.add("PostRecvs", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("WaitSends", OpSpec::WaitSends(key.clone()));
        let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(key.clone()));
        b.edge(ps, ws);
        b.edge(pr, wr);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let find = |n: &str| {
            s.items
                .iter()
                .find(|i| i.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
                .action
                .clone()
        };
        assert_eq!(find("PostSends"), ScheduleAction::PostSends(key.clone()));
        assert_eq!(find("PostRecvs"), ScheduleAction::PostRecvs(key.clone()));
        assert_eq!(find("WaitSends"), ScheduleAction::WaitSends(key.clone()));
        assert_eq!(find("WaitRecvs"), ScheduleAction::WaitRecvs(key));
    }

    #[test]
    fn every_traversal_lowers_cleanly() {
        let sp = space();
        for t in sp.enumerate() {
            let s = build_schedule(&sp, &t);
            // One item per decision op, plus End, plus any glued sync.
            assert!(s.items.len() > sp.num_ops());
            assert!(s.num_streams <= 2);
            // Every event referenced by sync/wait actions was recorded
            // earlier in the sequence.
            let mut recorded = std::collections::HashSet::new();
            for item in &s.items {
                match &item.action {
                    ScheduleAction::EventRecord { event, .. } => {
                        recorded.insert(*event);
                    }
                    ScheduleAction::EventSync { events } => {
                        for e in events {
                            assert!(recorded.contains(e), "sync before record in {t:?}");
                        }
                    }
                    ScheduleAction::StreamWaitEvent { event, .. } => {
                        assert!(recorded.contains(event), "wait before record in {t:?}");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn builder_pop_step_rewinds_to_the_previous_lowering() {
        // Depth-first walk of the whole space with one shared builder:
        // at every leaf the builder's schedule must equal the cold
        // lowering, and popping must restore the parent state exactly.
        let sp = space();
        let mut b = ScheduleBuilder::new(&sp);
        let mut leaves = 0usize;
        fn walk(
            sp: &DecisionSpace,
            prefix: &mut crate::space::Prefix,
            b: &mut ScheduleBuilder,
            leaves: &mut usize,
        ) {
            let elig = sp.eligible(prefix);
            if elig.is_empty() {
                let t = Traversal {
                    steps: prefix.steps().to_vec(),
                };
                let cold = build_schedule(sp, &t);
                let warm = b.with_complete_schedule(|s| s.clone());
                assert_eq!(warm, cold, "incremental lowering diverged at {t:?}");
                *leaves += 1;
                return;
            }
            for p in elig {
                sp.apply(prefix, p);
                let before = (b.items().len(), b.num_events(), b.num_streams());
                b.push_step(p);
                walk(sp, prefix, b, leaves);
                b.pop_step();
                assert_eq!(
                    before,
                    (b.items().len(), b.num_events(), b.num_streams()),
                    "pop_step must restore the parent lowering"
                );
                sp.unapply(prefix);
            }
        }
        let mut prefix = sp.empty_prefix();
        walk(&sp, &mut prefix, &mut b, &mut leaves);
        assert_eq!(leaves as u128, sp.count_traversals());
        assert!(b.is_empty());
    }

    #[test]
    fn reuses_cer_event_when_record_already_issued() {
        // Force g1's CER decision op to exist by giving g1 a CPU successor.
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(g1, g2);
        b.edge(g1, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[
                ("g1", Some(0)),
                ("CER-after-g1", None),
                ("g2", Some(1)),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        let s = build_schedule(&sp, &t);
        assert!(
            !s.names().iter().any(|n| n.contains("glued")),
            "record already issued; no glued record expected: {:?}",
            s.names()
        );
        assert!(s.names().contains(&"CSWE-b4-g2"));
    }
}
