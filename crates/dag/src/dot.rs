//! Graphviz export of program DAGs and decision spaces, for papers and
//! debugging (the source of figures like the paper's Fig. 3c).

use crate::graph::ProgramDag;
use crate::op::VertexKind;
use crate::space::{DecisionKind, DecisionSpace};

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Renders a program DAG in Graphviz `dot` syntax: GPU vertices as boxes,
/// CPU vertices as ellipses, artificial bookends dashed.
pub fn dag_to_dot(dag: &ProgramDag) -> String {
    let mut out = String::from("digraph program {\n  rankdir=TB;\n");
    for (id, v) in dag.vertices().iter().enumerate() {
        let shape = match v.kind() {
            VertexKind::Gpu => "box",
            VertexKind::Cpu => "ellipse",
        };
        let style = if v.spec.is_artificial() {
            ",style=dashed"
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{id} [label=\"{}\",shape={shape}{style}];\n",
            escape(&v.name)
        ));
    }
    for id in 0..dag.len() {
        for &s in dag.succs(id) {
            out.push_str(&format!("  n{id} -> n{s};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the decision space's precedence graph (user vertices plus the
/// spawned synchronization operations) in `dot` syntax.
pub fn space_to_dot(space: &DecisionSpace) -> String {
    let mut out = String::from("digraph decisions {\n  rankdir=TB;\n");
    for (id, op) in space.ops().iter().enumerate() {
        let (shape, style) = match op.kind {
            DecisionKind::Gpu(_) => ("box", ""),
            DecisionKind::Cpu(_) => ("ellipse", ""),
            DecisionKind::CerAfter(_) | DecisionKind::CesBefore(_) => ("diamond", ",style=dotted"),
        };
        out.push_str(&format!(
            "  n{id} [label=\"{}\",shape={shape}{style}];\n",
            escape(&op.name)
        ));
    }
    for id in 0..space.num_ops() {
        for &p in space.op_preds(id) {
            out.push_str(&format!("  n{p} -> n{id};\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;
    use crate::op::{CostKey, OpSpec};

    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let k = b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let c = b.add("c\"quoted\"", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(k, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    #[test]
    fn dag_dot_contains_all_vertices_and_edges() {
        let sp = space();
        let dot = dag_to_dot(sp.dag());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"k\",shape=box"));
        assert!(dot.contains("style=dashed"), "bookends dashed");
        assert!(dot.contains("->"));
        assert!(dot.contains("c\\\"quoted\\\""), "quotes escaped");
    }

    #[test]
    fn space_dot_includes_sync_ops() {
        let sp = space();
        let dot = space_to_dot(&sp);
        assert!(dot.contains("CER-after-k"));
        assert!(dot.contains("shape=diamond"));
        // One edge line per predecessor relation.
        let edges = dot.matches("->").count();
        let expected: usize = (0..sp.num_ops()).map(|o| sp.op_preds(o).len()).sum();
        assert_eq!(edges, expected);
    }
}
