//! # dr-dag — CUDA+MPI programs as DAGs of operations
//!
//! Substrate crate for the *Machine Learning for CUDA+MPI Design Rules*
//! reproduction. A CUDA+MPI program `P` is represented as a directed
//! acyclic graph `G_P` whose vertices are operations (GPU kernels, MPI
//! calls, CPU work) and whose edges are dependencies (paper Section III-A).
//! A *traversal* of `G_P` — an issue order plus a stream binding for every
//! GPU operation — specifies one concrete implementation of `P`.
//!
//! The crate provides:
//!
//! * [`DagBuilder`] / [`ProgramDag`] — construction and validation of
//!   program DAGs with artificial `Start`/`End` bookends;
//! * [`DecisionSpace`] — the sequential decision problem over traversal
//!   prefixes (paper Section III-B), including the `CER-after-*` /
//!   `CES-b4-*` synchronization operations of Table III as schedulable
//!   decisions, canonical pruning of stream-bijection-equivalent prefixes,
//!   exhaustive enumeration, and exact traversal counting;
//! * [`build_schedule`] — lowering of a traversal to the executable host
//!   instruction sequence, gluing `cudaStreamWaitEvent` synchronization for
//!   cross-stream GPU dependencies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod dot;
mod graph;
mod op;
mod space;
pub mod sync;

pub use analysis::{critical_path, depths, CriticalPath};
pub use dot::{dag_to_dot, space_to_dot};
pub use graph::{DagBuilder, DagError, ProgramDag, Vertex, VertexId};
pub use op::{CommKey, CostKey, OpSpec, VertexKind};
pub use space::{
    eval_seed, DecisionKind, DecisionOp, DecisionSpace, OpId, Placement, Prefix, SpaceError,
    StreamId, Traversal, TraversalIter,
};
pub use sync::{build_schedule, EventId, Schedule, ScheduleAction, ScheduleBuilder, ScheduledItem};
