//! The sequential decision problem over program traversals
//! (paper Sections III-B and III-C).
//!
//! A traversal of the program DAG specifies an implementation: the order in
//! which the CPU issues operations, plus a stream binding for every GPU
//! operation. This module derives from a [`ProgramDag`] the *decision
//! space*: the set of schedulable operations (user vertices plus the
//! synchronization operations of Table III that have freedom in where they
//! are issued), the precedence constraints among them, and the machinery to
//! enumerate or incrementally extend traversal prefixes.
//!
//! # Synchronization operations as decisions
//!
//! Table III of the paper inserts synchronization between dependent
//! operations. Two of those insertions leave real scheduling freedom, and
//! the paper's generated rules order them against kernels (e.g. *"yl before
//! CES-b4-PostSend"*), so they are modelled as first-class decision
//! operations:
//!
//! * `CER-after-u` — `cudaEventRecord` on `u`'s stream, for every GPU
//!   vertex `u` with a CPU successor (other than the artificial `End`,
//!   which performs a device-wide synchronization instead). Constraint:
//!   after `u`.
//! * `CES-b4-v` — `cudaEventSynchronize`, for every CPU vertex `v` with at
//!   least one GPU predecessor. Constraints: after every `CER-after-u` of
//!   its GPU predecessors, and before `v`.
//!
//! The remaining insertion — `cudaStreamWaitEvent` between GPU vertices
//! bound to *different* streams — depends on the stream binding chosen for
//! the successor, so it cannot exist before that choice is made. It is
//! glued immediately before its target during schedule construction
//! ([`crate::sync`]) and is not a decision operation.

use crate::graph::{ProgramDag, VertexId};
use crate::op::VertexKind;
use std::collections::HashMap;

/// Index of a decision operation within a [`DecisionSpace`].
pub type OpId = usize;

/// A CUDA stream identifier (0-based).
pub type StreamId = usize;

/// What a decision operation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// A synchronous CPU vertex from the program DAG.
    Cpu(VertexId),
    /// An asynchronous GPU vertex from the program DAG; the traversal must
    /// bind it to a stream.
    Gpu(VertexId),
    /// `cudaEventRecord` issued on the stream of the referenced GPU
    /// decision operation.
    CerAfter(OpId),
    /// `cudaEventSynchronize` blocking the CPU until the events of the
    /// referenced CPU operation's GPU predecessors have completed.
    CesBefore(OpId),
}

impl DecisionKind {
    /// True if the traversal must choose a stream for this operation.
    pub fn needs_stream(&self) -> bool {
        matches!(self, DecisionKind::Gpu(_))
    }
}

/// A schedulable operation in the decision space.
#[derive(Debug, Clone)]
pub struct DecisionOp {
    /// Display name; DAG vertices keep their names, synchronization
    /// operations are auto-named `CER-after-<u>` / `CES-b4-<v>` as in the
    /// paper.
    pub name: String,
    /// Role of the operation.
    pub kind: DecisionKind,
}

/// One step of a traversal: an operation, with a stream binding when the
/// operation is a GPU vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// The decision operation issued at this step.
    pub op: OpId,
    /// Stream binding; `Some` exactly for GPU vertices.
    pub stream: Option<StreamId>,
}

/// A complete traversal: a permutation of all decision operations
/// respecting the precedence constraints, with stream bindings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Traversal {
    /// The issue order.
    pub steps: Vec<Placement>,
}

/// One FNV-1a round over a 64-bit word.
fn fnv1a(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01B3)
}

/// The per-traversal evaluation seed: a pure function of the master seed
/// and the traversal's identity (its [`Traversal::canonical_hash`]).
///
/// This is the determinism policy of the parallel exploration engine:
/// because the seed depends on *what* is evaluated and never on *when*
/// (loop index) or *where* (worker thread), a traversal's measurement is
/// identical whether it is found first or last, serially or on any of N
/// threads — so the explored record set is a function of the search seed
/// alone, not of the thread count.
pub fn eval_seed(master: u64, t: &Traversal) -> u64 {
    t.canonical_hash() ^ master.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

impl Traversal {
    /// An order-sensitive 64-bit hash of the full placement sequence,
    /// stable across runs, platforms, and Rust versions (unlike the std
    /// hasher). Per-traversal evaluation seeds and the parallel engine's
    /// cache striping both derive from it, so its stability is part of
    /// the reproducibility contract.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
        for p in &self.steps {
            h = fnv1a(h, p.op as u64 + 1);
            h = fnv1a(
                h,
                match p.stream {
                    Some(s) => s as u64 + 2,
                    None => 1,
                },
            );
        }
        // FNV's high bits are weak; finish with the SplitMix64 avalanche
        // so the hash is usable for stripe selection and seed derivation.
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Position of each op in the issue order, indexed by [`OpId`].
    pub fn positions(&self, num_ops: usize) -> Vec<usize> {
        let mut pos = vec![usize::MAX; num_ops];
        for (i, p) in self.steps.iter().enumerate() {
            pos[p.op] = i;
        }
        pos
    }

    /// Stream binding of each op (`None` for CPU ops), indexed by [`OpId`].
    pub fn streams(&self, num_ops: usize) -> Vec<Option<StreamId>> {
        let mut st = vec![None; num_ops];
        for p in &self.steps {
            st[p.op] = p.stream;
        }
        st
    }
}

/// Errors from decision-space construction or traversal validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// More decision operations than the prefix bitmask supports.
    TooManyOps(usize),
    /// At least one stream is required.
    NoStreams,
    /// A traversal failed validation; the string explains why.
    InvalidTraversal(String),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::TooManyOps(n) => {
                write!(f, "{n} decision ops exceed the supported maximum of 64")
            }
            SpaceError::NoStreams => write!(f, "num_streams must be >= 1"),
            SpaceError::InvalidTraversal(why) => write!(f, "invalid traversal: {why}"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// The decision space derived from a program DAG: schedulable operations,
/// precedence constraints, and the number of available GPU streams.
#[derive(Debug, Clone)]
pub struct DecisionSpace {
    dag: ProgramDag,
    ops: Vec<DecisionOp>,
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
    num_streams: usize,
    /// DAG vertex id -> decision op id (None for Start/End).
    vertex_to_op: Vec<Option<OpId>>,
    /// GPU decision op -> its CER decision op, if any.
    cer_of: Vec<Option<OpId>>,
}

impl DecisionSpace {
    /// Derives the decision space from a validated DAG, with `num_streams`
    /// CUDA streams available for GPU vertices.
    pub fn new(dag: ProgramDag, num_streams: usize) -> Result<Self, SpaceError> {
        if num_streams == 0 {
            return Err(SpaceError::NoStreams);
        }
        let mut ops: Vec<DecisionOp> = Vec::new();
        let mut vertex_to_op: Vec<Option<OpId>> = vec![None; dag.len()];
        for v in dag.user_vertices() {
            let kind = match dag.vertex(v).kind() {
                VertexKind::Cpu => DecisionKind::Cpu(v),
                VertexKind::Gpu => DecisionKind::Gpu(v),
            };
            vertex_to_op[v] = Some(ops.len());
            ops.push(DecisionOp {
                name: dag.vertex(v).name.clone(),
                kind,
            });
        }

        let mut preds: Vec<Vec<OpId>> = vec![Vec::new(); ops.len()];
        // Precedence from DAG edges between user vertices.
        for v in dag.user_vertices() {
            let vo = vertex_to_op[v].expect("user vertex mapped");
            for &u in dag.preds(v) {
                if let Some(uo) = vertex_to_op[u] {
                    preds[vo].push(uo);
                }
            }
        }

        // Spawn CER-after-u for GPU u with a CPU user successor.
        let mut cer_of: Vec<Option<OpId>> = vec![None; ops.len()];
        let gpu_ops: Vec<OpId> = (0..ops.len())
            .filter(|&o| matches!(ops[o].kind, DecisionKind::Gpu(_)))
            .collect();
        for &g in &gpu_ops {
            let gv = match ops[g].kind {
                DecisionKind::Gpu(v) => v,
                _ => unreachable!(),
            };
            let has_cpu_user_succ = dag
                .succs(gv)
                .iter()
                .any(|&s| vertex_to_op[s].is_some() && dag.vertex(s).kind() == VertexKind::Cpu);
            if has_cpu_user_succ {
                let id = ops.len();
                ops.push(DecisionOp {
                    name: format!("CER-after-{}", ops[g].name),
                    kind: DecisionKind::CerAfter(g),
                });
                preds.push(vec![g]);
                cer_of[g] = Some(id);
            }
        }
        cer_of.resize(ops.len(), None);

        // Spawn CES-b4-v for CPU user v with >=1 GPU user predecessor.
        let cpu_ops: Vec<OpId> = (0..ops.len())
            .filter(|&o| matches!(ops[o].kind, DecisionKind::Cpu(_)))
            .collect();
        for &c in &cpu_ops {
            let cv = match ops[c].kind {
                DecisionKind::Cpu(v) => v,
                _ => unreachable!(),
            };
            let gpu_pred_cers: Vec<OpId> = dag
                .preds(cv)
                .iter()
                .filter_map(|&u| vertex_to_op[u])
                .filter(|&uo| matches!(ops[uo].kind, DecisionKind::Gpu(_)))
                .map(|uo| {
                    cer_of[uo]
                        .expect("a GPU vertex with a CPU successor always has a CER decision op")
                })
                .collect();
            if !gpu_pred_cers.is_empty() {
                let id = ops.len();
                ops.push(DecisionOp {
                    name: format!("CES-b4-{}", ops[c].name),
                    kind: DecisionKind::CesBefore(c),
                });
                preds.push(gpu_pred_cers);
                preds[c].push(id);
            }
        }
        cer_of.resize(ops.len(), None);

        if ops.len() > 64 {
            return Err(SpaceError::TooManyOps(ops.len()));
        }

        let mut succs: Vec<Vec<OpId>> = vec![Vec::new(); ops.len()];
        for (v, ps) in preds.iter().enumerate() {
            for &u in ps {
                succs[u].push(v);
            }
        }

        Ok(DecisionSpace {
            dag,
            ops,
            preds,
            succs,
            num_streams,
            vertex_to_op,
            cer_of,
        })
    }

    /// The underlying program DAG.
    pub fn dag(&self) -> &ProgramDag {
        &self.dag
    }

    /// All decision operations.
    pub fn ops(&self) -> &[DecisionOp] {
        &self.ops
    }

    /// Number of decision operations (== traversal length).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of available CUDA streams.
    pub fn num_streams(&self) -> usize {
        self.num_streams
    }

    /// Precedence predecessors of a decision operation.
    pub fn op_preds(&self, op: OpId) -> &[OpId] {
        &self.preds[op]
    }

    /// Precedence successors of a decision operation.
    pub fn op_succs(&self, op: OpId) -> &[OpId] {
        &self.succs[op]
    }

    /// Decision op id of a DAG vertex (None for Start/End).
    pub fn op_of_vertex(&self, v: VertexId) -> Option<OpId> {
        self.vertex_to_op.get(v).copied().flatten()
    }

    /// The CER decision op recording an event after GPU decision op `g`.
    pub fn cer_of(&self, g: OpId) -> Option<OpId> {
        self.cer_of[g]
    }

    /// Looks up a decision op by display name.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.ops.iter().position(|o| o.name == name)
    }

    /// A fresh empty prefix.
    pub fn empty_prefix(&self) -> Prefix {
        Prefix {
            steps: Vec::with_capacity(self.ops.len()),
            placed: 0,
            placed_preds: self.preds.iter().map(|_| 0u8).collect(),
            streams: vec![None; self.ops.len()],
            streams_used: 0,
        }
    }

    /// The eligible next placements from `prefix`, applying canonical
    /// stream pruning: a GPU vertex may use any already-used stream or the
    /// single lowest-numbered fresh one. This prunes prefixes equivalent
    /// under a stream bijection (paper Section III-C-2) while keeping the
    /// space complete.
    pub fn eligible(&self, prefix: &Prefix) -> Vec<Placement> {
        let mut out = Vec::new();
        for op in 0..self.ops.len() {
            if prefix.is_placed(op) {
                continue;
            }
            if (prefix.placed_preds[op] as usize) < self.preds[op].len() {
                continue;
            }
            if self.ops[op].kind.needs_stream() {
                let max_stream = (prefix.streams_used + 1).min(self.num_streams);
                for s in 0..max_stream {
                    out.push(Placement {
                        op,
                        stream: Some(s),
                    });
                }
            } else {
                out.push(Placement { op, stream: None });
            }
        }
        out
    }

    /// Applies a placement to a prefix. The placement must come from
    /// [`DecisionSpace::eligible`] (checked with debug assertions).
    pub fn apply(&self, prefix: &mut Prefix, p: Placement) {
        debug_assert!(!prefix.is_placed(p.op));
        debug_assert_eq!(
            prefix.placed_preds[p.op] as usize,
            self.preds[p.op].len(),
            "placement has unplaced predecessors"
        );
        debug_assert_eq!(p.stream.is_some(), self.ops[p.op].kind.needs_stream());
        prefix.placed |= 1u64 << p.op;
        prefix.streams[p.op] = p.stream;
        if let Some(s) = p.stream {
            debug_assert!(s <= prefix.streams_used, "non-canonical stream choice");
            if s == prefix.streams_used {
                prefix.streams_used += 1;
            }
        }
        for &succ in &self.succs[p.op] {
            prefix.placed_preds[succ] += 1;
        }
        prefix.steps.push(p);
    }

    /// Undoes the most recent placement (for DFS enumeration).
    pub fn unapply(&self, prefix: &mut Prefix) {
        let p = prefix.steps.pop().expect("prefix is non-empty");
        prefix.placed &= !(1u64 << p.op);
        prefix.streams[p.op] = None;
        if let Some(s) = p.stream {
            // Canonical numbering: the stream count only shrinks when the
            // removed placement introduced the newest stream and no other
            // placed op uses it.
            if s + 1 == prefix.streams_used && !prefix.steps.iter().any(|q| q.stream == Some(s)) {
                prefix.streams_used -= 1;
            }
        }
        for &succ in &self.succs[p.op] {
            prefix.placed_preds[succ] -= 1;
        }
    }

    /// Enumerates every complete canonical traversal **lazily**, in
    /// depth-first (canonical) order. Exhaustive exploration streams
    /// from this iterator, so peak memory is O(ops) bookkeeping rather
    /// than the full space; collect it only when a materialized list is
    /// genuinely needed.
    pub fn enumerate(&self) -> TraversalIter<'_> {
        TraversalIter {
            space: self,
            prefix: self.empty_prefix(),
            stack: Vec::new(),
            state: IterState::Fresh,
        }
    }

    /// Counts complete canonical traversals without materializing them,
    /// memoizing on (placed-set, streams-used). Exact even for spaces too
    /// large to enumerate.
    pub fn count_traversals(&self) -> u128 {
        let mut memo: HashMap<(u64, usize), u128> = HashMap::new();
        let mut prefix = self.empty_prefix();
        self.count_rec(&mut prefix, &mut memo)
    }

    fn count_rec(&self, prefix: &mut Prefix, memo: &mut HashMap<(u64, usize), u128>) -> u128 {
        if prefix.len() == self.ops.len() {
            return 1;
        }
        let key = (prefix.placed, prefix.streams_used);
        if let Some(&c) = memo.get(&key) {
            return c;
        }
        let mut total = 0u128;
        for p in self.eligible(prefix) {
            self.apply(prefix, p);
            total += self.count_rec(prefix, memo);
            self.unapply(prefix);
        }
        memo.insert(key, total);
        total
    }

    /// Completes `prefix` into a full traversal by repeatedly applying a
    /// placement chosen by `pick` from the eligible set (used by MCTS
    /// rollouts). The prefix is left complete.
    pub fn complete_with(
        &self,
        prefix: &mut Prefix,
        mut pick: impl FnMut(&[Placement]) -> usize,
    ) -> Traversal {
        while prefix.len() < self.ops.len() {
            let elig = self.eligible(prefix);
            debug_assert!(!elig.is_empty(), "a DAG prefix always has an eligible op");
            let i = pick(&elig);
            self.apply(prefix, elig[i]);
        }
        Traversal {
            steps: prefix.steps.clone(),
        }
    }

    /// Validates that `t` is a complete canonical traversal of this space.
    pub fn validate(&self, t: &Traversal) -> Result<(), SpaceError> {
        if t.steps.len() != self.ops.len() {
            return Err(SpaceError::InvalidTraversal(format!(
                "length {} != {} ops",
                t.steps.len(),
                self.ops.len()
            )));
        }
        let mut prefix = self.empty_prefix();
        for &p in &t.steps {
            let ok = self.eligible(&prefix).contains(&p);
            if !ok {
                return Err(SpaceError::InvalidTraversal(format!(
                    "step {:?} ({}) is not eligible at position {}",
                    p,
                    self.ops[p.op].name,
                    prefix.len()
                )));
            }
            self.apply(&mut prefix, p);
        }
        Ok(())
    }

    /// Builds a traversal from `(name, stream)` pairs; convenience for
    /// tests and examples.
    pub fn traversal_from_names(
        &self,
        steps: &[(&str, Option<StreamId>)],
    ) -> Result<Traversal, SpaceError> {
        let mut t = Traversal {
            steps: Vec::with_capacity(steps.len()),
        };
        for &(name, stream) in steps {
            let op = self
                .op_by_name(name)
                .ok_or_else(|| SpaceError::InvalidTraversal(format!("unknown op name {name:?}")))?;
            t.steps.push(Placement { op, stream });
        }
        self.validate(&t)?;
        Ok(t)
    }
}

/// One backtracking level of [`TraversalIter`]: the eligible placements
/// at that depth and the next alternative to try.
struct Frame {
    elig: Vec<Placement>,
    next: usize,
}

enum IterState {
    Fresh,
    Running,
    Done,
}

/// Lazy depth-first enumeration of every complete canonical traversal of
/// a [`DecisionSpace`], produced by [`DecisionSpace::enumerate`].
///
/// The iterator owns a single [`Prefix`] that it extends and backtracks
/// in place, so advancing costs amortized O(ops) per traversal and the
/// whole enumeration holds only O(ops²) transient state — never the full
/// space.
pub struct TraversalIter<'a> {
    space: &'a DecisionSpace,
    prefix: Prefix,
    stack: Vec<Frame>,
    state: IterState,
}

impl Iterator for TraversalIter<'_> {
    type Item = Traversal;

    fn next(&mut self) -> Option<Traversal> {
        match self.state {
            IterState::Done => return None,
            IterState::Fresh => {
                self.state = IterState::Running;
                if self.space.num_ops() == 0 {
                    self.state = IterState::Done;
                    return Some(Traversal { steps: Vec::new() });
                }
                self.stack.push(Frame {
                    elig: self.space.eligible(&self.prefix),
                    next: 0,
                });
            }
            IterState::Running => {}
        }
        // Invariant: the top frame enumerates alternatives for position
        // `prefix.len()`; a complete traversal is yielded with its final
        // placement already undone, so the stack never holds a frame for
        // the (choiceless) complete prefix.
        loop {
            let frame = self.stack.last_mut()?;
            if frame.next < frame.elig.len() {
                let p = frame.elig[frame.next];
                frame.next += 1;
                self.space.apply(&mut self.prefix, p);
                if self.prefix.len() == self.space.num_ops() {
                    let t = Traversal {
                        steps: self.prefix.steps.clone(),
                    };
                    self.space.unapply(&mut self.prefix);
                    return Some(t);
                }
                self.stack.push(Frame {
                    elig: self.space.eligible(&self.prefix),
                    next: 0,
                });
            } else {
                self.stack.pop();
                if self.stack.is_empty() {
                    self.state = IterState::Done;
                    return None;
                }
                self.space.unapply(&mut self.prefix);
            }
        }
    }
}

/// An in-progress traversal prefix `P_k` with incremental bookkeeping for
/// O(ops) eligibility queries and O(degree) apply/unapply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefix {
    steps: Vec<Placement>,
    placed: u64,
    placed_preds: Vec<u8>,
    streams: Vec<Option<StreamId>>,
    streams_used: usize,
}

impl Prefix {
    /// Number of placed operations (`k` in the paper's `P_k`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been placed.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The placements so far, in issue order.
    pub fn steps(&self) -> &[Placement] {
        &self.steps
    }

    /// Whether `op` is placed in this prefix.
    pub fn is_placed(&self, op: OpId) -> bool {
        self.placed & (1u64 << op) != 0
    }

    /// Stream binding of `op`, if it is a placed GPU op.
    pub fn stream_of(&self, op: OpId) -> Option<StreamId> {
        self.streams[op]
    }

    /// How many distinct streams the prefix has used so far.
    pub fn streams_used(&self) -> usize {
        self.streams_used
    }

    /// Bitmask of placed ops (ops are numbered 0..64).
    pub fn placed_mask(&self) -> u64 {
        self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;
    use crate::op::{CostKey, OpSpec};

    /// Two-kernel, one-CPU-op diamond used across the tests:
    /// `a (GPU)` and `b (GPU)` feed `c (CPU)`.
    fn diamond(num_streams: usize) -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), num_streams).unwrap()
    }

    #[test]
    fn sync_ops_are_spawned() {
        let sp = diamond(2);
        // a, b, c, CER-after-a, CER-after-b, CES-b4-c
        assert_eq!(sp.num_ops(), 6);
        assert!(sp.op_by_name("CER-after-a").is_some());
        assert!(sp.op_by_name("CER-after-b").is_some());
        assert!(sp.op_by_name("CES-b4-c").is_some());
        let ces = sp.op_by_name("CES-b4-c").unwrap();
        let c = sp.op_by_name("c").unwrap();
        assert!(sp.op_preds(c).contains(&ces));
        assert_eq!(sp.op_preds(ces).len(), 2);
    }

    #[test]
    fn gpu_vertex_feeding_only_end_gets_no_cer() {
        let mut b = DagBuilder::new();
        b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        assert_eq!(sp.num_ops(), 1);
        assert!(sp.op_by_name("CER-after-k").is_none());
    }

    #[test]
    fn eligibility_respects_preds() {
        let sp = diamond(1);
        let prefix = sp.empty_prefix();
        let elig = sp.eligible(&prefix);
        // Only the two kernels are initially eligible (single stream).
        let names: Vec<_> = elig.iter().map(|p| sp.ops()[p.op].name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn canonical_stream_pruning_first_gpu_uses_stream0() {
        let sp = diamond(2);
        let elig = sp.eligible(&sp.empty_prefix());
        for p in &elig {
            assert_eq!(
                p.stream,
                Some(0),
                "first GPU placement is pinned to stream 0"
            );
        }
        // After placing one kernel, the other may use stream 0 or 1.
        let mut prefix = sp.empty_prefix();
        sp.apply(&mut prefix, elig[0]);
        let second: Vec<_> = sp
            .eligible(&prefix)
            .into_iter()
            .filter(|p| sp.ops()[p.op].kind.needs_stream())
            .map(|p| p.stream.unwrap())
            .collect();
        assert_eq!(second, vec![0, 1]);
    }

    #[test]
    fn enumerate_and_count_agree() {
        for streams in 1..=3 {
            let sp = diamond(streams);
            let all: Vec<Traversal> = sp.enumerate().collect();
            assert_eq!(
                all.len() as u128,
                sp.count_traversals(),
                "streams={streams}"
            );
            // All traversals distinct and valid.
            let set: std::collections::HashSet<_> = all.iter().collect();
            assert_eq!(set.len(), all.len());
            for t in &all {
                sp.validate(t).unwrap();
            }
        }
    }

    #[test]
    fn diamond_count_single_stream_is_linear_extension_count() {
        // Ops: a, b, CER-a, CER-b, CES, c with a<CER-a<CES<c, b<CER-b<CES.
        // With one stream there are no stream choices. Count linear
        // extensions by brute force here: interleavings of chains
        // (a,CER-a) and (b,CER-b) then CES then c = C(4,2) = 6.
        let sp = diamond(1);
        assert_eq!(sp.count_traversals(), 6);
    }

    #[test]
    fn diamond_count_two_streams_scales_by_bindings() {
        // Two GPU ops, two streams: first pinned to stream 0, second free
        // => 2 bindings per ordering.
        let sp = diamond(2);
        assert_eq!(sp.count_traversals(), 12);
    }

    #[test]
    fn unapply_restores_state() {
        let sp = diamond(2);
        let mut prefix = sp.empty_prefix();
        let before = prefix.clone();
        let elig = sp.eligible(&prefix);
        sp.apply(&mut prefix, elig[0]);
        sp.unapply(&mut prefix);
        assert_eq!(prefix, before);
    }

    #[test]
    fn unapply_keeps_stream_count_when_stream_still_used() {
        let sp = diamond(2);
        let mut prefix = sp.empty_prefix();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        sp.apply(
            &mut prefix,
            Placement {
                op: a,
                stream: Some(0),
            },
        );
        sp.apply(
            &mut prefix,
            Placement {
                op: b,
                stream: Some(0),
            },
        );
        sp.unapply(&mut prefix);
        assert_eq!(prefix.streams_used(), 1, "stream 0 still used by a");
    }

    #[test]
    fn complete_with_always_terminates() {
        let sp = diamond(2);
        let mut prefix = sp.empty_prefix();
        let t = sp.complete_with(&mut prefix, |_| 0);
        assert_eq!(t.steps.len(), sp.num_ops());
        sp.validate(&t).unwrap();
    }

    #[test]
    fn validate_rejects_bad_traversals() {
        let sp = diamond(1);
        let all: Vec<Traversal> = sp.enumerate().collect();
        let mut t = all[0].clone();
        t.steps.swap(0, 5); // break precedence
        assert!(sp.validate(&t).is_err());
        let mut short = all[0].clone();
        short.steps.pop();
        assert!(sp.validate(&short).is_err());
    }

    #[test]
    fn traversal_from_names_roundtrip() {
        let sp = diamond(1);
        let t = sp
            .traversal_from_names(&[
                ("a", Some(0)),
                ("CER-after-a", None),
                ("b", Some(0)),
                ("CER-after-b", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        sp.validate(&t).unwrap();
        assert!(sp.traversal_from_names(&[("nope", None)]).is_err());
    }

    #[test]
    fn positions_and_streams_views() {
        let sp = diamond(2);
        let t = sp.enumerate().next().unwrap();
        let pos = t.positions(sp.num_ops());
        for (i, p) in t.steps.iter().enumerate() {
            assert_eq!(pos[p.op], i);
        }
        let st = t.streams(sp.num_ops());
        for p in &t.steps {
            assert_eq!(st[p.op], p.stream);
        }
    }

    #[test]
    fn zero_streams_rejected() {
        let mut b = DagBuilder::new();
        b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        assert_eq!(
            DecisionSpace::new(b.build().unwrap(), 0).unwrap_err(),
            SpaceError::NoStreams
        );
    }

    #[test]
    fn cpu_only_program_has_no_stream_choices() {
        let mut b = DagBuilder::new();
        let x = b.add("x", OpSpec::CpuWork(CostKey::new("x")));
        let y = b.add("y", OpSpec::CpuWork(CostKey::new("y")));
        b.edge(x, y);
        let sp = DecisionSpace::new(b.build().unwrap(), 4).unwrap();
        assert_eq!(sp.count_traversals(), 1);
        let t = sp.enumerate().next().unwrap();
        assert!(t.steps.iter().all(|p| p.stream.is_none()));
    }

    #[test]
    fn lazy_enumeration_matches_eager_collection() {
        let sp = diamond(2);
        // Driving the iterator one element at a time gives the same
        // sequence as collecting it wholesale.
        let eager: Vec<Traversal> = sp.enumerate().collect();
        let mut it = sp.enumerate();
        for want in &eager {
            assert_eq!(&it.next().unwrap(), want);
        }
        assert!(it.next().is_none());
        assert!(it.next().is_none(), "fused after exhaustion");
        // And partial consumption does not require the full space.
        let first_three: Vec<Traversal> = sp.enumerate().take(3).collect();
        assert_eq!(&eager[..3], &first_three[..]);
    }

    #[test]
    fn canonical_hash_distinguishes_ops_streams_and_order() {
        let sp = diamond(2);
        let all: Vec<Traversal> = sp.enumerate().collect();
        let hashes: std::collections::HashSet<u64> =
            all.iter().map(Traversal::canonical_hash).collect();
        assert_eq!(hashes.len(), all.len(), "no collisions on this space");
        // Equal traversals hash equal (pure function of the steps).
        assert_eq!(all[0].canonical_hash(), all[0].clone().canonical_hash());
    }

    #[test]
    fn eval_seed_depends_on_master_and_traversal_only() {
        let sp = diamond(2);
        let mut it = sp.enumerate();
        let (a, b) = (it.next().unwrap(), it.next().unwrap());
        assert_eq!(eval_seed(7, &a), eval_seed(7, &a));
        assert_ne!(eval_seed(7, &a), eval_seed(8, &a));
        assert_ne!(eval_seed(7, &a), eval_seed(7, &b));
    }
}
