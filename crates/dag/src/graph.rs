//! The program DAG `G_P` (paper Section III-A).
//!
//! Vertices are operations of a CUDA+MPI program `P`; edges are the
//! dependencies between them. Artificial `Start` and `End` vertices are
//! added so that every vertex lies on a `Start → … → End` path.

use crate::op::{OpSpec, VertexKind};

/// Index of a vertex inside a [`ProgramDag`].
pub type VertexId = usize;

/// A named operation in the program DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vertex {
    /// Human-readable operation name (e.g. `"Pack"`, `"yl"`). Names appear
    /// verbatim in generated design rules.
    pub name: String,
    /// Semantic payload interpreted by the platform simulator.
    pub spec: OpSpec,
}

impl Vertex {
    /// Table II classification of this vertex.
    pub fn kind(&self) -> VertexKind {
        self.spec.kind()
    }
}

/// Errors detected while building or validating a program DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two vertices were given the same name; rules would be ambiguous.
    DuplicateName(String),
    /// An edge endpoint does not refer to an added vertex.
    UnknownVertex(VertexId),
    /// An edge from a vertex to itself.
    SelfLoop(String),
    /// The dependencies contain a cycle involving the named vertex, so the
    /// graph is not a DAG and has no traversal.
    Cycle(String),
    /// The same edge was added twice.
    DuplicateEdge(String, String),
    /// The graph has no vertices besides the artificial bookends.
    Empty,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::DuplicateName(n) => write!(f, "duplicate vertex name {n:?}"),
            DagError::UnknownVertex(v) => write!(f, "edge endpoint {v} does not exist"),
            DagError::SelfLoop(n) => write!(f, "self-loop on vertex {n:?}"),
            DagError::Cycle(n) => write!(f, "dependency cycle through vertex {n:?}"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge {u:?} -> {v:?}"),
            DagError::Empty => write!(f, "program has no operations"),
        }
    }
}

impl std::error::Error for DagError {}

/// Builder for [`ProgramDag`]. Add operation vertices and dependency edges,
/// then call [`DagBuilder::build`]; the builder inserts the artificial
/// `Start`/`End` bookends and validates the graph.
#[derive(Debug, Default)]
pub struct DagBuilder {
    vertices: Vec<Vertex>,
    edges: Vec<(VertexId, VertexId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operation vertex and returns its id.
    pub fn add(&mut self, name: impl Into<String>, spec: OpSpec) -> VertexId {
        let id = self.vertices.len();
        self.vertices.push(Vertex {
            name: name.into(),
            spec,
        });
        id
    }

    /// Declares that `v` can start only after `u` completes.
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Validates the graph, adds `Start`/`End`, and produces the immutable
    /// [`ProgramDag`].
    pub fn build(self) -> Result<ProgramDag, DagError> {
        if self.vertices.is_empty() {
            return Err(DagError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for v in &self.vertices {
            if v.spec.is_artificial() {
                // Users must not add their own bookends; names would clash.
                return Err(DagError::DuplicateName(v.name.clone()));
            }
            if !seen.insert(v.name.as_str()) {
                return Err(DagError::DuplicateName(v.name.clone()));
            }
        }
        let n_user = self.vertices.len();
        for &(u, v) in &self.edges {
            if u >= n_user {
                return Err(DagError::UnknownVertex(u));
            }
            if v >= n_user {
                return Err(DagError::UnknownVertex(v));
            }
            if u == v {
                return Err(DagError::SelfLoop(self.vertices[u].name.clone()));
            }
        }

        let mut vertices = self.vertices;
        let start = vertices.len();
        vertices.push(Vertex {
            name: "Start".into(),
            spec: OpSpec::Start,
        });
        let end = vertices.len();
        vertices.push(Vertex {
            name: "End".into(),
            spec: OpSpec::End,
        });

        let n = vertices.len();
        let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut edge_set = std::collections::HashSet::new();
        for &(u, v) in &self.edges {
            if !edge_set.insert((u, v)) {
                return Err(DagError::DuplicateEdge(
                    vertices[u].name.clone(),
                    vertices[v].name.clone(),
                ));
            }
            succs[u].push(v);
            preds[v].push(u);
        }
        // Start feeds every user vertex with no predecessor; every user
        // vertex with no successor feeds End (paper Section III-A).
        for id in 0..n_user {
            if preds[id].is_empty() {
                succs[start].push(id);
                preds[id].push(start);
            }
            if succs[id].is_empty() {
                succs[id].push(end);
                preds[end].push(id);
            }
        }

        let dag = ProgramDag {
            vertices,
            preds,
            succs,
            start,
            end,
        };
        dag.check_acyclic()?;
        Ok(dag)
    }
}

/// An immutable, validated program DAG with artificial `Start`/`End`
/// bookends. `Start` has a path to every vertex and every vertex has a path
/// to `End`.
#[derive(Debug, Clone)]
pub struct ProgramDag {
    vertices: Vec<Vertex>,
    preds: Vec<Vec<VertexId>>,
    succs: Vec<Vec<VertexId>>,
    start: VertexId,
    end: VertexId,
}

impl ProgramDag {
    /// All vertices, including `Start` and `End`.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// The vertex with the given id.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id]
    }

    /// Direct predecessors of `id`.
    pub fn preds(&self, id: VertexId) -> &[VertexId] {
        &self.preds[id]
    }

    /// Direct successors of `id`.
    pub fn succs(&self, id: VertexId) -> &[VertexId] {
        &self.succs[id]
    }

    /// Id of the artificial entry vertex.
    pub fn start(&self) -> VertexId {
        self.start
    }

    /// Id of the artificial exit vertex.
    pub fn end(&self) -> VertexId {
        self.end
    }

    /// Number of vertices including the bookends.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the DAG holds no vertices (never true post-build).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Ids of the user (non-artificial) vertices.
    pub fn user_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len()).filter(|&v| !self.vertices[v].spec.is_artificial())
    }

    /// Looks a vertex up by name.
    pub fn by_name(&self, name: &str) -> Option<VertexId> {
        self.vertices.iter().position(|v| v.name == name)
    }

    /// One topological order of all vertices (Kahn's algorithm); `Start`
    /// first, `End` last.
    pub fn topo_order(&self) -> Vec<VertexId> {
        let n = self.vertices.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.preds[v].len()).collect();
        let mut queue: Vec<VertexId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph validated acyclic at build time");
        order
    }

    fn check_acyclic(&self) -> Result<(), DagError> {
        let n = self.vertices.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.preds[v].len()).collect();
        let mut queue: Vec<VertexId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut visited = 0usize;
        while let Some(v) = queue.pop() {
            visited += 1;
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if visited != n {
            let culprit = (0..n)
                .find(|&v| indeg[v] > 0)
                .expect("some vertex has positive in-degree in a cycle");
            return Err(DagError::Cycle(self.vertices[culprit].name.clone()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CommKey, CostKey};

    fn cpu(name: &str) -> (String, OpSpec) {
        (name.to_string(), OpSpec::CpuWork(CostKey::new(name)))
    }

    #[test]
    fn build_adds_bookends_and_paths() {
        let mut b = DagBuilder::new();
        let (n1, s1) = cpu("a");
        let a = b.add(n1, s1);
        let (n2, s2) = cpu("b");
        let v = b.add(n2, s2);
        b.edge(a, v);
        let dag = b.build().unwrap();
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.preds(a), &[dag.start()]);
        assert_eq!(dag.succs(v), &[dag.end()]);
        assert_eq!(dag.vertex(dag.start()).name, "Start");
        assert_eq!(dag.vertex(dag.end()).name, "End");
    }

    #[test]
    fn isolated_vertex_connects_both_bookends() {
        let mut b = DagBuilder::new();
        let (n, s) = cpu("solo");
        let v = b.add(n, s);
        let dag = b.build().unwrap();
        assert_eq!(dag.preds(v), &[dag.start()]);
        assert_eq!(dag.succs(v), &[dag.end()]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = DagBuilder::new();
        let (n1, s1) = cpu("a");
        let a = b.add(n1, s1);
        let (n2, s2) = cpu("b");
        let v = b.add(n2, s2);
        b.edge(a, v);
        b.edge(v, a);
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = DagBuilder::new();
        let (n1, s1) = cpu("a");
        b.add(n1, s1);
        let (_, s2) = cpu("x");
        b.add("a", s2);
        assert_eq!(b.build().unwrap_err(), DagError::DuplicateName("a".into()));
    }

    #[test]
    fn reserved_bookend_names_rejected() {
        let mut b = DagBuilder::new();
        b.add("sneaky", OpSpec::Start);
        assert!(matches!(b.build(), Err(DagError::DuplicateName(_))));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let (n1, s1) = cpu("a");
        let a = b.add(n1, s1);
        b.edge(a, a);
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop("a".into()));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut b = DagBuilder::new();
        let (n1, s1) = cpu("a");
        let a = b.add(n1, s1);
        b.edge(a, 17);
        assert_eq!(b.build().unwrap_err(), DagError::UnknownVertex(17));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DagBuilder::new();
        let (n1, s1) = cpu("a");
        let a = b.add(n1, s1);
        let (n2, s2) = cpu("b");
        let v = b.add(n2, s2);
        b.edge(a, v);
        b.edge(a, v);
        assert!(matches!(b.build(), Err(DagError::DuplicateEdge(_, _))));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..5)
            .map(|i| {
                let (n, s) = cpu(&format!("v{i}"));
                b.add(n, s)
            })
            .collect();
        b.edge(ids[0], ids[2]);
        b.edge(ids[1], ids[2]);
        b.edge(ids[2], ids[3]);
        b.edge(ids[2], ids[4]);
        let dag = b.build().unwrap();
        let order = dag.topo_order();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in 0..dag.len() {
            for &s in dag.succs(v) {
                assert!(pos[&v] < pos[&s], "{v} must precede {s}");
            }
        }
        assert_eq!(order[0], dag.start());
        assert_eq!(*order.last().unwrap(), dag.end());
    }

    #[test]
    fn by_name_finds_vertices() {
        let mut b = DagBuilder::new();
        let (n, s) = cpu("needle");
        let id = b.add(n, s);
        b.add("haystack", OpSpec::GpuKernel(CostKey::new("k")));
        let dag = b.build().unwrap();
        assert_eq!(dag.by_name("needle"), Some(id));
        assert_eq!(dag.by_name("missing"), None);
    }

    #[test]
    fn mixed_specs_supported() {
        let mut b = DagBuilder::new();
        let k = CommKey::new("x");
        let p = b.add("pack", OpSpec::GpuKernel(CostKey::new("pack")));
        let s = b.add("send", OpSpec::PostSends(k.clone()));
        let r = b.add("recv", OpSpec::PostRecvs(k.clone()));
        let ws = b.add("ws", OpSpec::WaitSends(k.clone()));
        let wr = b.add("wr", OpSpec::WaitRecvs(k));
        b.edge(p, s);
        b.edge(s, ws);
        b.edge(r, wr);
        let dag = b.build().unwrap();
        assert_eq!(dag.vertex(p).kind(), VertexKind::Gpu);
        assert_eq!(dag.vertex(ws).kind(), VertexKind::Cpu);
        assert_eq!(dag.user_vertices().count(), 5);
    }
}
