//! Operation taxonomy for CUDA+MPI program DAGs (paper Table II).
//!
//! A program is assembled from *operations*: synchronous CPU work,
//! asynchronous GPU kernels, and MPI point-to-point communication calls.
//! In the DAG, GPU operations are not yet assigned to a stream; the search
//! binds them to streams (`BoundGPU_s` in the paper) as part of each
//! candidate implementation.

use std::fmt;

/// Identifies an entry in a [`CostModel`](crate::CostKey)-style lookup: the
/// platform model resolves this key to a duration for each rank.
///
/// Keys are plain strings so that workload crates can mint them without a
/// central registry; they are resolved once per schedule compilation, not
/// per simulated sample, so string comparison cost is irrelevant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CostKey(pub String);

impl CostKey {
    /// Creates a cost key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        CostKey(s.into())
    }
}

impl fmt::Display for CostKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifies a communication pattern: which peers each rank exchanges data
/// with and how many bytes flow on each edge. A `WaitSends`/`WaitRecvs`
/// operation completes the non-blocking operations posted by the
/// `PostSends`/`PostRecvs` operation carrying the *same* key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommKey(pub String);

impl CommKey {
    /// Creates a communication key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        CommKey(s.into())
    }
}

impl fmt::Display for CommKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a DAG vertex *does*. This is the semantic payload the platform
/// simulator interprets; the search machinery only cares about the derived
/// [`VertexKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpSpec {
    /// Artificial entry vertex: single entry point of the program.
    Start,
    /// Artificial exit vertex. Models a full device synchronization plus
    /// barrier: the program is complete only when every operation has
    /// finished. Because `End` synchronizes the whole device, edges into it
    /// never spawn explicit event-based synchronization.
    End,
    /// A synchronous CPU computation; the CPU thread is busy for the
    /// duration resolved from the cost key.
    CpuWork(CostKey),
    /// An asynchronous GPU kernel launch. The kernel body runs on whichever
    /// stream the search binds it to; the CPU pays only launch overhead.
    GpuKernel(CostKey),
    /// Post one `MPI_Isend` per peer in the communication pattern.
    PostSends(CommKey),
    /// Post one `MPI_Irecv` per peer in the communication pattern.
    PostRecvs(CommKey),
    /// Block the CPU until every send posted under this key has completed.
    WaitSends(CommKey),
    /// Block the CPU until every receive posted under this key has landed.
    WaitRecvs(CommKey),
    /// A blocking `MPI_Allreduce` (Table II's collective functions): every
    /// rank contributes a payload and blocks until the reduction
    /// completes across all ranks. The workload's communication pattern
    /// for the key gives each rank's contribution size as a single
    /// `sends` entry `(0, bytes)`; `recvs` must be empty, and the key
    /// must not be shared with point-to-point operations.
    AllReduce(CommKey),
}

/// Whether a vertex runs on the CPU timeline or is an (unbound) GPU
/// operation, mirroring the paper's Table II. `BoundGPU_s` arises at search
/// time, when a [`Placement`](crate::Placement) pairs a GPU vertex with a
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// Synchronous CPU operation (including MPI calls, which are issued by
    /// the CPU even when the payload moves asynchronously).
    Cpu,
    /// Asynchronous GPU operation, not yet assigned to a stream.
    Gpu,
}

impl OpSpec {
    /// The Table II classification of this operation.
    pub fn kind(&self) -> VertexKind {
        match self {
            OpSpec::GpuKernel(_) => VertexKind::Gpu,
            _ => VertexKind::Cpu,
        }
    }

    /// True for the artificial `Start`/`End` bookends.
    pub fn is_artificial(&self) -> bool {
        matches!(self, OpSpec::Start | OpSpec::End)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_kernel_is_gpu_kind() {
        assert_eq!(OpSpec::GpuKernel(CostKey::new("k")).kind(), VertexKind::Gpu);
    }

    #[test]
    fn mpi_and_cpu_ops_are_cpu_kind() {
        for spec in [
            OpSpec::Start,
            OpSpec::End,
            OpSpec::CpuWork(CostKey::new("w")),
            OpSpec::PostSends(CommKey::new("c")),
            OpSpec::PostRecvs(CommKey::new("c")),
            OpSpec::WaitSends(CommKey::new("c")),
            OpSpec::WaitRecvs(CommKey::new("c")),
            OpSpec::AllReduce(CommKey::new("c")),
        ] {
            assert_eq!(spec.kind(), VertexKind::Cpu, "{spec:?}");
        }
    }

    #[test]
    fn artificial_detection() {
        assert!(OpSpec::Start.is_artificial());
        assert!(OpSpec::End.is_artificial());
        assert!(!OpSpec::CpuWork(CostKey::new("w")).is_artificial());
    }

    #[test]
    fn keys_display_and_compare() {
        let a = CostKey::new("pack");
        let b = CostKey::new("pack");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "pack");
        let c = CommKey::new("halo");
        assert_eq!(c.to_string(), "halo");
    }
}
