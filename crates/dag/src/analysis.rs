//! Static DAG analysis: critical paths and dependency depth.
//!
//! The critical path under a duration assignment is a *lower bound* on
//! any implementation's makespan — no ordering or stream assignment can
//! beat the longest chain of dependent work. Comparing it against the
//! fastest explored implementation tells a systems expert how much
//! headroom the search has left.

use crate::graph::{ProgramDag, VertexId};

/// The heaviest dependency chain and its total duration.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total duration along the path.
    pub length: f64,
    /// Vertices on the path (Start/End excluded), in dependency order.
    pub vertices: Vec<VertexId>,
}

/// Computes the critical path of a DAG under a per-vertex duration
/// function (`Start`/`End` contribute zero). Negative durations are
/// rejected.
pub fn critical_path(dag: &ProgramDag, dur: impl Fn(VertexId) -> f64) -> CriticalPath {
    let n = dag.len();
    let mut best: Vec<f64> = vec![0.0; n]; // path length *ending* at v, inclusive
    let mut pred_on_path: Vec<Option<VertexId>> = vec![None; n];
    for v in dag.topo_order() {
        let d = if dag.vertex(v).spec.is_artificial() {
            0.0
        } else {
            dur(v)
        };
        assert!(d >= 0.0, "negative duration for {}", dag.vertex(v).name);
        let (incoming, from) = dag
            .preds(v)
            .iter()
            .map(|&u| (best[u], Some(u)))
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite durations"))
            .unwrap_or((0.0, None));
        best[v] = incoming + d;
        pred_on_path[v] = from;
    }
    // Walk back from End.
    let mut vertices = Vec::new();
    let mut cur = Some(dag.end());
    while let Some(v) = cur {
        if !dag.vertex(v).spec.is_artificial() {
            vertices.push(v);
        }
        cur = pred_on_path[v];
    }
    vertices.reverse();
    CriticalPath {
        length: best[dag.end()],
        vertices,
    }
}

/// Dependency depth of each vertex: the number of edges on the longest
/// path from `Start` (Start itself has depth 0).
pub fn depths(dag: &ProgramDag) -> Vec<usize> {
    let mut depth = vec![0usize; dag.len()];
    for v in dag.topo_order() {
        for &u in dag.preds(v) {
            depth[v] = depth[v].max(depth[u] + 1);
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;
    use crate::op::{CostKey, OpSpec};

    fn chain_and_branch() -> (ProgramDag, Vec<VertexId>) {
        // a -> b -> d, a -> c -> d; b heavy, c light.
        let mut bld = DagBuilder::new();
        let ids: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| bld.add(*n, OpSpec::CpuWork(CostKey::new(*n))))
            .collect();
        bld.edge(ids[0], ids[1]);
        bld.edge(ids[0], ids[2]);
        bld.edge(ids[1], ids[3]);
        bld.edge(ids[2], ids[3]);
        (bld.build().unwrap(), ids)
    }

    #[test]
    fn critical_path_picks_the_heavy_branch() {
        let (dag, ids) = chain_and_branch();
        let dur = |v: VertexId| match dag.vertex(v).name.as_str() {
            "a" => 1.0,
            "b" => 10.0,
            "c" => 2.0,
            "d" => 3.0,
            _ => 0.0,
        };
        let cp = critical_path(&dag, dur);
        assert_eq!(cp.length, 14.0);
        assert_eq!(cp.vertices, vec![ids[0], ids[1], ids[3]]);
    }

    #[test]
    fn independent_vertices_take_the_max() {
        let mut b = DagBuilder::new();
        b.add("x", OpSpec::CpuWork(CostKey::new("x")));
        b.add("y", OpSpec::CpuWork(CostKey::new("y")));
        let dag = b.build().unwrap();
        let cp = critical_path(&dag, |v| if dag.vertex(v).name == "x" { 5.0 } else { 7.0 });
        assert_eq!(cp.length, 7.0);
        assert_eq!(cp.vertices.len(), 1);
    }

    #[test]
    fn zero_durations_give_zero_path() {
        let (dag, _) = chain_and_branch();
        let cp = critical_path(&dag, |_| 0.0);
        assert_eq!(cp.length, 0.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_durations_rejected() {
        let (dag, _) = chain_and_branch();
        critical_path(&dag, |_| -1.0);
    }

    #[test]
    fn depths_count_longest_edge_chains() {
        let (dag, ids) = chain_and_branch();
        let d = depths(&dag);
        assert_eq!(d[ids[0]], 1); // Start -> a
        assert_eq!(d[ids[1]], 2);
        assert_eq!(d[ids[3]], 3);
        assert_eq!(d[dag.end()], 4);
    }
}
