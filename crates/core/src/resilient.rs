//! Chaos-mode resilience: bounded retry-with-reseed evaluation under a
//! deterministic fault plan, panic containment, and shared counters for
//! the run report.
//!
//! With [`PipelineConfig::faults`](crate::PipelineConfig) active, every
//! traversal is evaluated by a [`ResilientEvaluator`]: each attempt
//! derives a [`FaultPlan`] from a pure function of the evaluation seed
//! and the attempt number, runs the benchmark under a watchdog budget,
//! and absorbs fault-induced deadlocks, budget kills, and panics by
//! retrying with a reseeded plan. Only after [`DEFAULT_MAX_RETRIES`]
//! extra attempts does the error propagate — at which point the
//! exploration layer quarantines the traversal rather than aborting the
//! run. Every decision is a pure function of `(traversal, fault config,
//! attempt)`, so outcomes are identical across thread counts and reruns.

use crate::report::ResilienceSummary;
use dr_dag::{build_schedule, DecisionSpace, Traversal};
use dr_fault::{FaultConfig, FaultPlan};
use dr_mcts::Evaluator;
use dr_sim::{
    benchmark_instrumented, BenchConfig, BenchResult, CompiledProgram, Platform, SimError,
    SimStats, Workload,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reseeded retry attempts after the first failed evaluation.
pub const DEFAULT_MAX_RETRIES: usize = 2;

/// Default first-retry backoff delay (milliseconds). Deliberately tiny:
/// the delays exist to decorrelate retry storms under real transient
/// faults, and the defaults keep chaos CI fast.
pub const DEFAULT_BACKOFF_BASE_MS: u64 = 1;

/// Default backoff ceiling (milliseconds): exponential growth is capped
/// here no matter how many retries the budget allows.
pub const DEFAULT_BACKOFF_CAP_MS: u64 = 25;

/// Watchdog step budget applied to fault-injected executions whose
/// platform does not already carry one: generous enough for any real
/// schedule, small enough that a fault-induced livelock dies in
/// milliseconds instead of hanging the exploration.
pub const WATCHDOG_MAX_STEPS: u64 = 5_000_000;

/// The fault plan seed of retry `attempt` for an evaluation seeded with
/// `eval_seed` — a pure function of both, so a retried measurement is
/// identical wherever and whenever it runs. Attempt 0 is the evaluation
/// seed itself.
pub fn retry_seed(eval_seed: u64, attempt: usize) -> u64 {
    eval_seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// SplitMix64 finisher used to derive backoff jitter bits.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The backoff delay (milliseconds) before retry `attempt` (≥ 1) of an
/// evaluation seeded with `eval_seed`: capped exponential growth from
/// `base_ms` with deterministic seed-derived jitter. The uncapped
/// schedule is `base · 2^(attempt-1)`; jitter draws the delay uniformly
/// from the upper half `[exp/2, exp]` of that step, from bits that are a
/// pure function of `(eval_seed, attempt)` — so total backoff time is
/// identical across thread counts and reruns, and can be asserted on in
/// the resilience report.
pub fn backoff_delay_ms(base_ms: u64, cap_ms: u64, attempt: usize, eval_seed: u64) -> u64 {
    if attempt == 0 || base_ms == 0 {
        return 0;
    }
    let exp = base_ms
        .saturating_mul(1u64 << (attempt - 1).min(20))
        .min(cap_ms);
    if exp == 0 {
        return 0;
    }
    let half = exp / 2;
    half + splitmix(retry_seed(eval_seed, attempt)) % (exp - half + 1)
}

/// Retry knobs from the environment: `DR_RETRY_MAX` overrides the
/// bounded retry budget (extra attempts after the first failure),
/// `DR_RETRY_BACKOFF_MS` the backoff base, and
/// `DR_RETRY_BACKOFF_CAP_MS` the ceiling (defaulting to the larger of
/// the base and [`DEFAULT_BACKOFF_CAP_MS`], so raising the base alone
/// still takes effect). Unset or unparseable variables fall back to the
/// compiled defaults. Shard workers honor these, which gives chaos
/// tests a wall-clock lever: injected drops plus a large retry budget
/// and slow backoff turn one worker into a genuine straggler.
pub fn retry_knobs_from_env() -> (usize, u64, u64) {
    parse_retry_knobs(
        std::env::var("DR_RETRY_MAX").ok(),
        std::env::var("DR_RETRY_BACKOFF_MS").ok(),
        std::env::var("DR_RETRY_BACKOFF_CAP_MS").ok(),
    )
}

fn parse_retry_knobs(
    max: Option<String>,
    base: Option<String>,
    cap: Option<String>,
) -> (usize, u64, u64) {
    let parse_u64 =
        |v: Option<String>, dflt: u64| v.and_then(|s| s.trim().parse::<u64>().ok()).unwrap_or(dflt);
    let max_retries = max
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_MAX_RETRIES);
    let base_ms = parse_u64(base, DEFAULT_BACKOFF_BASE_MS);
    let cap_ms = parse_u64(cap, DEFAULT_BACKOFF_CAP_MS.max(base_ms));
    (max_retries, base_ms, cap_ms)
}

/// Thread-safe resilience counters shared by every exploration worker.
#[derive(Debug, Default)]
pub struct ResilienceTotals {
    evaluations: AtomicU64,
    retries: AtomicU64,
    deadlocks: AtomicU64,
    budget_kills: AtomicU64,
    panics: AtomicU64,
    quarantined: AtomicU64,
    retry_delay_ms: AtomicU64,
}

impl ResilienceTotals {
    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Records traversals dropped after exhausting their retry budget
    /// (called by the exploration layer, which owns that decision).
    pub fn note_quarantined(&self, n: u64) {
        Self::add(&self.quarantined, n);
    }

    /// Snapshot for the run report.
    pub fn summary(&self) -> ResilienceSummary {
        ResilienceSummary {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            budget_kills: self.budget_kills.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            retry_delay_ms: self.retry_delay_ms.load(Ordering::Relaxed),
        }
    }
}

/// Turns a caught panic payload into displayable text.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The chaos-mode evaluator: compiles a traversal once, then benchmarks
/// it under a seed-derived [`FaultPlan`] with a watchdog budget,
/// retrying with a reseeded plan when the injected faults kill the run.
pub struct ResilientEvaluator<'a, W: Workload> {
    space: &'a DecisionSpace,
    workload: &'a W,
    platform: &'a Platform,
    bench: BenchConfig,
    faults: FaultConfig,
    max_retries: usize,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    totals: Arc<ResilienceTotals>,
    stats: SimStats,
}

impl<'a, W: Workload> ResilientEvaluator<'a, W> {
    /// Creates an evaluator injecting `faults` into every measurement,
    /// accumulating counters into the shared `totals`.
    pub fn new(
        space: &'a DecisionSpace,
        workload: &'a W,
        platform: &'a Platform,
        bench: BenchConfig,
        faults: FaultConfig,
        totals: Arc<ResilienceTotals>,
    ) -> Self {
        ResilientEvaluator {
            space,
            workload,
            platform,
            bench,
            faults,
            max_retries: DEFAULT_MAX_RETRIES,
            backoff_base_ms: DEFAULT_BACKOFF_BASE_MS,
            backoff_cap_ms: DEFAULT_BACKOFF_CAP_MS,
            totals,
            stats: SimStats::default(),
        }
    }

    /// Overrides the bounded-retry budget (extra attempts after the
    /// first failure; [`DEFAULT_MAX_RETRIES`] by default).
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the retry backoff schedule (`base_ms = 0` disables
    /// delays entirely while keeping the retry semantics).
    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64) -> Self {
        self.backoff_base_ms = base_ms;
        self.backoff_cap_ms = cap_ms;
        self
    }

    /// Simulator statistics summed over every attempt of every
    /// evaluated traversal (fault counters included).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }
}

impl<W: Workload> Evaluator for ResilientEvaluator<'_, W> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        let schedule = build_schedule(self.space, t);
        let prog = CompiledProgram::compile(&schedule, self.workload)?;
        let mut last: Option<SimError> = None;
        for attempt in 0..=self.max_retries {
            ResilienceTotals::add(&self.totals.evaluations, 1);
            if attempt > 0 {
                ResilienceTotals::add(&self.totals.retries, 1);
                // Capped exponential backoff with seed-derived jitter:
                // the delay is a pure function of (seed, attempt), so
                // the reported totals are deterministic too.
                let delay =
                    backoff_delay_ms(self.backoff_base_ms, self.backoff_cap_ms, attempt, seed);
                if delay > 0 {
                    ResilienceTotals::add(&self.totals.retry_delay_ms, delay);
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
            let plan = FaultPlan::derive(&self.faults, retry_seed(seed, attempt));
            let mut platform = self.platform.clone().with_faults(plan);
            if platform.max_steps == 0 {
                platform.max_steps = WATCHDOG_MAX_STEPS;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                benchmark_instrumented(&prog, &platform, &self.bench, seed)
            }));
            match outcome {
                Ok(Ok((result, stats))) => {
                    self.stats.merge(&stats);
                    return Ok(result);
                }
                Ok(Err(e @ SimError::Deadlock { .. })) => {
                    ResilienceTotals::add(&self.totals.deadlocks, 1);
                    last = Some(e);
                }
                Ok(Err(e @ SimError::Budget { .. })) => {
                    ResilienceTotals::add(&self.totals.budget_kills, 1);
                    last = Some(e);
                }
                // Structural errors (missing costs, malformed comms) are
                // not fault-induced; retrying cannot help.
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    ResilienceTotals::add(&self.totals.panics, 1);
                    last = Some(SimError::Panicked {
                        detail: panic_text(payload),
                    });
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{eval_seed, CostKey, DagBuilder, OpSpec};
    use dr_sim::TableWorkload;

    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        (space, w, Platform::perlmutter_like().noiseless())
    }

    #[test]
    fn retry_seed_is_pure_and_attempt_sensitive() {
        assert_eq!(retry_seed(7, 0), 7);
        assert_eq!(retry_seed(7, 3), retry_seed(7, 3));
        assert_ne!(retry_seed(7, 1), retry_seed(7, 2));
        assert_ne!(retry_seed(7, 1), retry_seed(8, 1));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_exponential() {
        // Attempt 0 and a zero base never delay.
        assert_eq!(backoff_delay_ms(4, 100, 0, 9), 0);
        assert_eq!(backoff_delay_ms(0, 100, 3, 9), 0);
        // Pure function of (seed, attempt).
        for attempt in 1..6 {
            assert_eq!(
                backoff_delay_ms(4, 100, attempt, 9),
                backoff_delay_ms(4, 100, attempt, 9)
            );
        }
        // Each step lands in the jittered upper half of base·2^(a-1),
        // clamped to the cap.
        for attempt in 1..12 {
            for seed in [0u64, 9, 77, u64::MAX] {
                let exp = 4u64.saturating_mul(1 << (attempt - 1)).min(100);
                let d = backoff_delay_ms(4, 100, attempt, seed);
                assert!(
                    d >= exp / 2 && d <= exp,
                    "attempt {attempt}: {d} vs exp {exp}"
                );
            }
        }
        // Different seeds actually jitter.
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|s| backoff_delay_ms(50, 1_000, 4, s)).collect();
        assert!(spread.len() > 1, "jitter must vary with the seed");
    }

    #[test]
    fn retries_accumulate_deterministic_delay_totals() {
        let (space, w, platform) = setup();
        let t = space.enumerate().next().unwrap();
        let platform = platform.with_budget(1, 0.0);
        let run = || {
            let totals = Arc::new(ResilienceTotals::default());
            let mut eval = ResilientEvaluator::new(
                &space,
                &w,
                &platform,
                BenchConfig::quick(),
                FaultConfig::light(),
                totals.clone(),
            )
            .with_backoff(1, 25);
            let _ = eval.evaluate(&t, eval_seed(3, &t));
            totals.summary()
        };
        let a = run();
        let b = run();
        assert_eq!(a.retries as usize, DEFAULT_MAX_RETRIES);
        assert!(a.retry_delay_ms > 0, "retries must report backoff time");
        assert_eq!(
            a.retry_delay_ms, b.retry_delay_ms,
            "delay totals are a pure function of the seeds"
        );
    }

    #[test]
    fn clean_faults_match_the_plain_evaluator_bit_for_bit() {
        let (space, w, platform) = setup();
        let t = space.enumerate().next().unwrap();
        let seed = eval_seed(11, &t);
        let totals = Arc::new(ResilienceTotals::default());
        let mut resilient = ResilientEvaluator::new(
            &space,
            &w,
            &platform,
            BenchConfig::quick(),
            FaultConfig::clean(),
            totals.clone(),
        );
        let mut plain = dr_mcts::SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let a = resilient.evaluate(&t, seed).unwrap();
        let b = Evaluator::evaluate(&mut plain, &t, seed).unwrap();
        assert_eq!(a, b, "a clean fault plan must not perturb measurements");
        let s = totals.summary();
        assert_eq!(s.evaluations, 1);
        assert_eq!(s.retries + s.deadlocks + s.budget_kills + s.panics, 0);
    }

    #[test]
    fn outlier_faults_perturb_measurements_deterministically() {
        let (space, w, platform) = setup();
        let t = space.enumerate().next().unwrap();
        let seed = eval_seed(11, &t);
        let totals = Arc::new(ResilienceTotals::default());
        let cfg = FaultConfig {
            outlier_prob: 1.0,
            outlier_factor: 10.0,
            ..FaultConfig::clean()
        };
        let run = || {
            let mut eval = ResilientEvaluator::new(
                &space,
                &w,
                &platform,
                BenchConfig::quick(),
                cfg,
                totals.clone(),
            );
            eval.evaluate(&t, seed).unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "fault-injected runs are deterministic");
        let mut plain = dr_mcts::SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let clean = Evaluator::evaluate(&mut plain, &t, seed).unwrap();
        assert!(
            first.percentiles.p99 > clean.percentiles.p99 * 2.0,
            "universal outliers must inflate the tail ({} vs {})",
            first.percentiles.p99,
            clean.percentiles.p99
        );
    }

    #[test]
    fn exhausted_retries_surface_the_final_error() {
        let (space, w, platform) = setup();
        let t = space.enumerate().next().unwrap();
        let totals = Arc::new(ResilienceTotals::default());
        // A one-step budget kills every attempt regardless of the plan.
        let platform = platform.with_budget(1, 0.0);
        let mut eval = ResilientEvaluator::new(
            &space,
            &w,
            &platform,
            BenchConfig::quick(),
            FaultConfig::light(),
            totals.clone(),
        );
        let err = eval.evaluate(&t, eval_seed(3, &t)).unwrap_err();
        assert!(matches!(err, SimError::Budget { .. }), "{err}");
        let s = totals.summary();
        assert_eq!(s.evaluations as usize, 1 + DEFAULT_MAX_RETRIES);
        assert_eq!(s.retries as usize, DEFAULT_MAX_RETRIES);
        assert_eq!(s.budget_kills as usize, 1 + DEFAULT_MAX_RETRIES);
    }
    #[test]
    fn retry_knobs_parse_with_defaults_and_cap_tracking() {
        let some = |s: &str| Some(s.to_string());
        assert_eq!(
            parse_retry_knobs(None, None, None),
            (
                DEFAULT_MAX_RETRIES,
                DEFAULT_BACKOFF_BASE_MS,
                DEFAULT_BACKOFF_CAP_MS
            )
        );
        assert_eq!(
            parse_retry_knobs(some("10"), some("50"), some("200")),
            (10, 50, 200)
        );
        // Raising the base alone lifts the default cap with it.
        assert_eq!(parse_retry_knobs(None, some("100"), None).2, 100);
        // Garbage falls back to defaults instead of failing the run.
        assert_eq!(
            parse_retry_knobs(some("lots"), some(""), None),
            (
                DEFAULT_MAX_RETRIES,
                DEFAULT_BACKOFF_BASE_MS,
                DEFAULT_BACKOFF_CAP_MS
            )
        );
    }
}
