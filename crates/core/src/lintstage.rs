//! The opt-in lint stage: static schedule analysis threaded through the
//! exploration pipeline.
//!
//! With [`PipelineConfig::lint`](crate::PipelineConfig) enabled, every
//! evaluated traversal is first checked by `dr-lint` (happens-before
//! verification, MPI deadlock detection, redundant-sync analysis) before
//! the simulator measures it. Findings never fail an evaluation — the
//! simulator remains the ground truth for *time* — but they accumulate
//! into shared [`LintTotals`] surfaced in the run's
//! [`RunReport`](crate::RunReport).

use crate::report::LintSummary;
use dr_dag::{DecisionSpace, OpSpec, Traversal};
use dr_fault::{key_hash, FaultPlan, MessageFault};
use dr_lint::{
    lint_space_incremental, lint_traversal, AggregatedDiag, CommTopology, DiagAggregator,
    LintCounters, LintReport, SpaceLintOptions, SpaceLintStats,
};
use dr_mcts::Evaluator;
use dr_obs::events::EventSink;
use dr_sim::{BenchResult, Platform, SimError, SimStats, Workload};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe lint counters shared by every exploration worker.
#[derive(Debug, Default)]
pub struct LintTotals {
    schedules: AtomicU64,
    errors: AtomicU64,
    warnings: AtomicU64,
    races: AtomicU64,
    deadlocks: AtomicU64,
    redundant_syncs: AtomicU64,
    nanos: AtomicU64,
    space_schedules: AtomicU64,
    hb_expansions: AtomicU64,
    cold_hb_expansions: AtomicU64,
    pruned_subtrees: AtomicU64,
}

impl LintTotals {
    /// Folds one schedule's report (and the time spent producing it) in.
    pub fn absorb(&self, report: &LintReport, nanos: u64) {
        self.schedules.fetch_add(1, Ordering::Relaxed);
        self.errors
            .fetch_add(report.errors().count() as u64, Ordering::Relaxed);
        self.warnings
            .fetch_add(report.warnings().count() as u64, Ordering::Relaxed);
        self.races
            .fetch_add(report.races() as u64, Ordering::Relaxed);
        self.deadlocks
            .fetch_add(report.deadlocks() as u64, Ordering::Relaxed);
        self.redundant_syncs
            .fetch_add(report.redundant_syncs() as u64, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Folds in the statistics of a space-level incremental lint pass.
    /// Space-lint schedules are counted separately from the per-traversal
    /// `schedules` counter (the two passes cover different populations).
    pub fn absorb_space(&self, stats: &SpaceLintStats) {
        self.space_schedules
            .fetch_add(stats.schedules, Ordering::Relaxed);
        self.hb_expansions
            .fetch_add(stats.hb_expansions, Ordering::Relaxed);
        self.cold_hb_expansions
            .fetch_add(stats.cold_hb_expansions, Ordering::Relaxed);
        self.pruned_subtrees
            .fetch_add(stats.pruned_subtrees, Ordering::Relaxed);
    }

    /// Snapshot for the run report.
    pub fn summary(&self) -> LintSummary {
        LintSummary {
            schedules: self.schedules.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            warnings: self.warnings.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            redundant_syncs: self.redundant_syncs.load(Ordering::Relaxed),
            space_schedules: self.space_schedules.load(Ordering::Relaxed),
            hb_expansions: self.hb_expansions.load(Ordering::Relaxed),
            cold_hb_expansions: self.cold_hb_expansions.load(Ordering::Relaxed),
            pruned_subtrees: self.pruned_subtrees.load(Ordering::Relaxed),
        }
    }

    /// Total wall-clock seconds spent linting (summed across workers).
    pub fn seconds(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// Evaluator wrapper that lints each traversal before the inner evaluator
/// measures it. Placed *inside* the exploration cache, so each distinct
/// traversal is linted exactly once per run.
pub struct LintingEvaluator<'a, E> {
    inner: E,
    space: &'a DecisionSpace,
    topo: &'a CommTopology,
    totals: Arc<LintTotals>,
}

impl<'a, E> LintingEvaluator<'a, E> {
    /// Wraps `inner`, accumulating findings into the shared `totals`.
    pub fn new(
        inner: E,
        space: &'a DecisionSpace,
        topo: &'a CommTopology,
        totals: Arc<LintTotals>,
    ) -> Self {
        LintingEvaluator {
            inner,
            space,
            topo,
            totals,
        }
    }
}

impl<E: Evaluator> Evaluator for LintingEvaluator<'_, E> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        let start = std::time::Instant::now();
        let report = lint_traversal(self.space, t, Some(self.topo));
        self.totals
            .absorb(&report, start.elapsed().as_nanos() as u64);
        self.inner.evaluate(t, seed)
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        self.inner.sim_stats()
    }
}

/// Builds the lint-side communication topology from the pipeline's own
/// ingredients: one [`RankTraffic`](dr_lint::RankTraffic) entry per comm
/// key referenced by the DAG, resolved through the workload, with the
/// platform's eager threshold.
pub fn topology_from_workload<W: Workload>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
) -> CommTopology {
    let dag = space.dag();
    let keys: BTreeSet<_> = dag
        .user_vertices()
        .filter_map(|v| match &dag.vertex(v).spec {
            OpSpec::PostSends(c)
            | OpSpec::PostRecvs(c)
            | OpSpec::WaitSends(c)
            | OpSpec::WaitRecvs(c)
            | OpSpec::AllReduce(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    let mut topo =
        CommTopology::new(workload.num_ranks()).with_eager_threshold(platform.eager_threshold);
    for key in keys {
        for rank in 0..workload.num_ranks() {
            if let Some(pattern) = workload.comm(rank, &key) {
                topo.set(key.clone(), rank, pattern.sends, pattern.recvs);
            }
        }
    }
    topo
}

/// Projects a fault plan's message-drop decisions onto a lint topology:
/// every send the simulator would drop under `plan` becomes a lost send
/// the deadlock detector treats as never arriving. Both sides hash the
/// comm key's string with [`dr_fault::key_hash`], so the simulator and
/// the linter agree on exactly which messages vanish — the chaos oracle
/// cross-checks fault-induced `SimError::Deadlock`s against the
/// MPI103/MPI104 verdicts this topology produces.
pub fn apply_fault_plan(topo: &mut CommTopology, plan: &FaultPlan) {
    let keys: Vec<_> = topo.keys().cloned().collect();
    for key in keys {
        let kh = key_hash(&key.0);
        let Some(pat) = topo.pattern(&key) else {
            continue;
        };
        let lost: Vec<(usize, usize)> = pat
            .iter()
            .enumerate()
            .flat_map(|(src, t)| {
                t.sends
                    .iter()
                    .filter(move |&&(dst, _)| {
                        plan.message(kh, src, dst) == Some(MessageFault::Drop)
                    })
                    .map(move |&(dst, _)| (src, dst))
            })
            .collect();
        for (src, dst) in lost {
            topo.add_lost_send(key.clone(), src, dst);
        }
    }
}

/// Outcome of linting an enumerated decision space.
#[derive(Debug, Clone)]
pub struct SpaceLint {
    /// Aggregate counters over every linted schedule.
    pub counters: LintCounters,
    /// Whether enumeration stopped at the schedule cap.
    pub truncated: bool,
    /// Rendered deduplicated diagnostics (capped): each distinct
    /// `(code, items, message)` appears once with its schedule count.
    pub sample: Vec<String>,
    /// Incremental-engine statistics (prefix sharing, pruning).
    pub stats: SpaceLintStats,
    /// Every distinct diagnostic across the space, stably sorted, with
    /// per-diagnostic schedule counts.
    pub diags: Vec<AggregatedDiag>,
}

/// Lints every traversal `space` enumerates (up to `max_schedules`;
/// `0` = unlimited) with the incremental space-level engine: schedules
/// sharing a traversal prefix share happens-before state, so the cost is
/// proportional to distinct prefixes rather than schedules × length.
/// Diagnostics are deduplicated across the space, and verdicts are
/// bit-identical to linting each schedule cold.
pub fn lint_space(
    space: &DecisionSpace,
    topo: Option<&CommTopology>,
    max_schedules: usize,
) -> SpaceLint {
    lint_space_watched(space, topo, max_schedules, None)
}

/// [`lint_space`] with a structured event stream: `lint-start` opens the
/// pass, one `lint-diag` per distinct aggregated diagnostic, and
/// `lint-end` closes it with the aggregate counters. A `None` or
/// disabled sink makes this exactly [`lint_space`].
pub fn lint_space_watched(
    space: &DecisionSpace,
    topo: Option<&CommTopology>,
    max_schedules: usize,
    events: Option<&EventSink>,
) -> SpaceLint {
    const SAMPLE_CAP: usize = 12;
    let events = events.filter(|s| s.is_enabled());
    if let Some(sink) = events {
        sink.emit(
            "lint-start",
            &[
                ("ops", space.num_ops().into()),
                ("max_schedules", max_schedules.into()),
            ],
        );
    }
    let mut counters = LintCounters::default();
    let mut agg = DiagAggregator::new();
    let stats = lint_space_incremental(
        space,
        topo,
        SpaceLintOptions {
            max_schedules: max_schedules as u64,
            prune_deadlocks: false,
        },
        None,
        &mut |i, _prefix, report| {
            agg.absorb(i, report);
            counters.absorb(report);
        },
    );
    let diags = agg.entries();
    if let Some(sink) = events {
        for d in &diags {
            sink.emit(
                "lint-diag",
                &[
                    ("code", d.diag.code.as_str().into()),
                    ("message", d.diag.message.as_str().into()),
                    ("schedules", d.schedules.into()),
                    ("first_schedule", d.first_schedule.into()),
                ],
            );
        }
        sink.emit(
            "lint-end",
            &[
                ("schedules", counters.schedules.into()),
                ("errors", counters.errors.into()),
                ("warnings", counters.warnings.into()),
                ("distinct_diags", diags.len().into()),
                ("hb_expansions", stats.hb_expansions.into()),
                ("cold_hb_expansions", stats.cold_hb_expansions.into()),
                ("truncated", u64::from(stats.truncated).into()),
            ],
        );
    }
    let sample: Vec<String> = diags.iter().take(SAMPLE_CAP).map(|d| d.render()).collect();
    SpaceLint {
        counters,
        truncated: stats.truncated,
        sample,
        stats,
        diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CommKey, CostKey, DagBuilder};
    use dr_sim::TableWorkload;

    fn exchange_space() -> DecisionSpace {
        let key = CommKey::new("x");
        let mut b = DagBuilder::new();
        let ps = b.add("ps", OpSpec::PostSends(key.clone()));
        let pr = b.add("pr", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("ws", OpSpec::WaitSends(key.clone()));
        let wr = b.add("wr", OpSpec::WaitRecvs(key));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        DecisionSpace::new(b.build().unwrap(), 1).unwrap()
    }

    fn exchange_workload(bytes: u64) -> TableWorkload {
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", bytes);
        w
    }

    #[test]
    fn topology_mirrors_the_workload() {
        let space = exchange_space();
        let w = exchange_workload(4096);
        let platform = Platform::perlmutter_like();
        let topo = topology_from_workload(&space, &w, &platform);
        let pat = topo.pattern(&CommKey::new("x")).expect("key known");
        assert_eq!(pat.len(), 2);
        assert_eq!(pat[0].sends, vec![(1, 4096)]);
        assert_eq!(pat[1].recvs, vec![(0, 4096)]);
        assert_eq!(topo.is_eager(4096), platform.is_eager(4096));
    }

    #[test]
    fn lint_space_aggregates_and_caps() {
        let space = exchange_space();
        let w = exchange_workload(256);
        let topo = topology_from_workload(&space, &w, &Platform::perlmutter_like());
        let full = lint_space(&space, Some(&topo), 0);
        assert!(!full.truncated);
        assert_eq!(full.counters.errors, 0, "{:?}", full.sample);
        let capped = lint_space(&space, Some(&topo), 1);
        assert!(capped.truncated);
        assert_eq!(capped.counters.schedules, 1);
    }

    #[test]
    fn applied_fault_plan_marks_exactly_the_sims_drops() {
        let space = exchange_space();
        let w = exchange_workload(1 << 20);
        let platform = Platform::perlmutter_like();
        let cfg = dr_fault::FaultConfig::drops();
        let plan = FaultPlan::derive(&cfg, 17);
        let mut topo = topology_from_workload(&space, &w, &platform);
        apply_fault_plan(&mut topo, &plan);
        let key = CommKey::new("x");
        let kh = key_hash(&key.0);
        for (src, dst) in [(0usize, 1usize), (1, 0)] {
            let sim_drops = plan.message(kh, src, dst) == Some(MessageFault::Drop);
            assert_eq!(
                topo.is_lost(&key, src, dst),
                sim_drops,
                "oracle and simulator disagree on {src} -> {dst}"
            );
        }
    }

    #[test]
    fn chaos_oracle_sim_deadlocks_match_lint_verdicts() {
        // The heart of the chaos oracle: for a sweep of seeded drop
        // plans, the simulator's fault-induced deadlocks and the
        // deadlock detector's MPI103/MPI104 verdicts must agree exactly.
        let space = exchange_space();
        let w = exchange_workload(1 << 20); // rendezvous-sized exchange
        let platform = Platform::perlmutter_like().noiseless();
        let t = space.enumerate().next().unwrap();
        let schedule = dr_dag::build_schedule(&space, &t);
        let prog = dr_sim::CompiledProgram::compile(&schedule, &w).unwrap();
        let cfg = dr_fault::FaultConfig::drops();
        let (mut dropping, mut clean) = (0u32, 0u32);
        for seed in 0..24u64 {
            let plan = FaultPlan::derive(&cfg, seed);
            let faulted = platform
                .clone()
                .with_faults(plan)
                .with_budget(1_000_000, 0.0);
            let sim = dr_sim::benchmark_instrumented(
                &prog,
                &faulted,
                &dr_sim::BenchConfig::quick(),
                seed,
            );
            let sim_deadlocked = match sim {
                Ok(_) => false,
                Err(dr_sim::SimError::Deadlock { .. } | dr_sim::SimError::Budget { .. }) => true,
                Err(e) => panic!("unexpected simulator error under drops: {e}"),
            };
            let mut topo = topology_from_workload(&space, &w, &platform);
            apply_fault_plan(&mut topo, &plan);
            let report = lint_traversal(&space, &t, Some(&topo));
            let lint_flagged = report.deadlocks() > 0;
            assert_eq!(
                sim_deadlocked, lint_flagged,
                "seed {seed}: simulator deadlock = {sim_deadlocked}, \
                 lint verdict = {lint_flagged}"
            );
            if sim_deadlocked {
                dropping += 1;
            } else {
                clean += 1;
            }
        }
        assert!(dropping > 0, "sweep never dropped a message");
        assert!(clean > 0, "sweep never left a plan clean");
    }

    #[test]
    fn linting_evaluator_counts_without_changing_results() {
        let mut b = DagBuilder::new();
        b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let space = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("k", 1e-4);
        let platform = Platform::perlmutter_like().noiseless();
        let topo = topology_from_workload(&space, &w, &platform);
        let totals = Arc::new(LintTotals::default());
        let inner = dr_mcts::SimEvaluator::new(&space, &w, &platform, dr_sim::BenchConfig::quick());
        let mut eval = LintingEvaluator::new(inner, &space, &topo, totals.clone());
        let t = space.enumerate().next().unwrap();
        let res = eval.evaluate(&t, 7).unwrap();
        assert!(res.time() >= 1e-4);
        let summary = totals.summary();
        assert_eq!(summary.schedules, 1);
        assert_eq!(summary.errors, 0);
        assert!(totals.seconds() >= 0.0);
        assert!(eval.sim_stats().is_some());
    }
}
