//! Rule-quality evaluation (paper Section V, Fig. 7).
//!
//! Rules mined from a partial exploration are judged against the full
//! space: every implementation is classified with the subset-trained
//! tree, and the *labeling accuracy* is the proportion whose true
//! (exhaustively measured) time falls within the performance range of the
//! predicted class. As the exploration budget grows, accuracy approaches
//! 100 %.

use crate::pipeline::PipelineResult;
use dr_dag::{DecisionSpace, Traversal};

/// Result of evaluating subset-derived rules against the full space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Implementations whose time fell inside the predicted class range.
    pub within_range: usize,
    /// Total implementations classified.
    pub total: usize,
}

impl AccuracyReport {
    /// The labeling accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.within_range as f64 / self.total as f64
        }
    }
}

/// Classifies every implementation of `ground_truth` (traversal, true
/// time) with the subset-trained pipeline and checks the time against the
/// predicted class's `[fastest, slowest]` range, widened by
/// `tolerance` (a fraction, e.g. 0.0 for the paper's strict check).
pub fn labeling_accuracy(
    space: &DecisionSpace,
    subset: &PipelineResult,
    ground_truth: &[(Traversal, f64)],
    tolerance: f64,
) -> AccuracyReport {
    let mut within = 0usize;
    for (t, time) in ground_truth {
        let class = subset.classify(space, t);
        let (lo, hi) = subset.labeling.class_ranges[class];
        let margin_lo = lo * (1.0 - tolerance);
        let margin_hi = hi * (1.0 + tolerance);
        if *time >= margin_lo && *time <= margin_hi {
            within += 1;
        }
    }
    AccuracyReport {
        within_range: within,
        total: ground_truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Strategy;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use dr_dag::{CostKey, DagBuilder, DecisionSpace, OpSpec};
    use dr_sim::{Platform, TableWorkload};

    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 5e-4)
            .cost_all("b", 5e-4)
            .cost_all("c", 1e-5);
        let platform = dr_sim::Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        (space, w, platform)
    }

    #[test]
    fn exhaustive_rules_score_perfectly_on_their_own_data() {
        let (space, w, platform) = setup();
        let result = run_pipeline(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        let truth: Vec<_> = result
            .records
            .iter()
            .map(|r| (r.traversal.clone(), r.result.time()))
            .collect();
        let report = labeling_accuracy(&space, &result, &truth, 0.0);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.total, truth.len());
    }

    #[test]
    fn tolerance_widens_acceptance() {
        let (space, w, platform) = setup();
        let result = run_pipeline(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        // Shift all true times up by 1%: strict check fails for ranges
        // that were tight, 5% tolerance recovers them.
        let truth: Vec<_> = result
            .records
            .iter()
            .map(|r| (r.traversal.clone(), r.result.time() * 1.01))
            .collect();
        let strict = labeling_accuracy(&space, &result, &truth, 0.0);
        let loose = labeling_accuracy(&space, &result, &truth, 0.05);
        assert!(loose.accuracy() >= strict.accuracy());
        assert_eq!(loose.accuracy(), 1.0);
    }

    #[test]
    fn empty_ground_truth_reports_zero() {
        let (space, w, platform) = setup();
        let result = run_pipeline(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        let report = labeling_accuracy(&space, &result, &[], 0.0);
        assert_eq!(report.accuracy(), 0.0);
    }
}
