//! Event-stream instrumentation of evaluator stacks.
//!
//! [`WatchedEvaluator`] is the event-stream analogue of
//! `TracingEvaluator`: it wraps any [`Evaluator`] and emits a sampled
//! `eval` event per measurement, carrying a global evaluation counter
//! shared across all workers (so `records/sec` style rates can be
//! derived from any worker's events). Observation never perturbs
//! results — evaluation seeds are a pure function of the traversal —
//! and with no live sink the wrapper is a plain pass-through.

use dr_dag::Traversal;
use dr_mcts::Evaluator;
use dr_obs::events::{sampled, EventSink};
use dr_sim::{BenchResult, SimError, SimStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared state of the pipeline's `eval` event lane: the sink, a global
/// evaluation counter, and the sampling rate. Clone one per worker
/// evaluator; clones share the counter.
#[derive(Debug, Clone)]
pub struct EvalWatch {
    sink: EventSink,
    counter: Arc<AtomicU64>,
    every: usize,
}

impl EvalWatch {
    /// Creates a watch emitting to `sink`, sampling one `eval` event
    /// every `every` evaluations (the first is always emitted).
    pub fn new(sink: EventSink, every: usize) -> Self {
        EvalWatch {
            sink,
            counter: Arc::new(AtomicU64::new(0)),
            every: every.max(1),
        }
    }

    /// Total evaluations counted so far across all clones.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// An [`Evaluator`] adapter that emits sampled `eval` events. Place it
/// outermost in the stack so the measured wall time covers the whole
/// stack (tracing, linting, resilience retries, and the simulation).
#[derive(Debug)]
pub struct WatchedEvaluator<E> {
    inner: E,
    watch: Option<EvalWatch>,
}

impl<E> WatchedEvaluator<E> {
    /// Wraps `inner`; `None` (or a disabled sink) makes this a
    /// pass-through with a single branch of overhead per evaluation.
    pub fn new(inner: E, watch: Option<EvalWatch>) -> Self {
        let watch = watch.filter(|w| w.sink.is_enabled());
        WatchedEvaluator { inner, watch }
    }
}

impl<E: Evaluator> Evaluator for WatchedEvaluator<E> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        let Some(watch) = &self.watch else {
            return self.inner.evaluate(t, seed);
        };
        let n = watch.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let start = Instant::now();
        let result = self.inner.evaluate(t, seed);
        if sampled(n as usize, watch.every) {
            // A failed evaluation reports NaN, which the JSON encoder
            // renders as null.
            let time_s = result.as_ref().map(|r| r.time()).unwrap_or(f64::NAN);
            watch.sink.emit(
                "eval",
                &[
                    ("eval", n.into()),
                    ("traversal", format!("{:016x}", t.canonical_hash()).into()),
                    ("time_s", time_s.into()),
                    ("wall_s", start.elapsed().as_secs_f64().into()),
                    ("ok", result.is_ok().into()),
                ],
            );
        }
        result
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        self.inner.sim_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_obs::SharedBuf;
    use dr_sim::Percentiles;

    struct Fixed;
    impl Evaluator for Fixed {
        fn evaluate(&mut self, _t: &Traversal, _seed: u64) -> Result<BenchResult, SimError> {
            let t = 1.0;
            Ok(BenchResult {
                measurements: vec![t],
                percentiles: Percentiles {
                    p01: t,
                    p10: t,
                    p50: t,
                    p90: t,
                    p99: t,
                },
            })
        }
        fn sim_stats(&self) -> Option<&SimStats> {
            None
        }
    }

    fn traversal() -> Traversal {
        Traversal { steps: Vec::new() }
    }

    #[test]
    fn pass_through_without_a_watch() {
        let mut eval = WatchedEvaluator::new(Fixed, None);
        assert!(eval.evaluate(&traversal(), 0).is_ok());
    }

    #[test]
    fn sampled_eval_events_share_one_counter() {
        let buf = SharedBuf::new();
        let sink = EventSink::new("run-w").with_writer(Box::new(buf.clone()));
        let watch = EvalWatch::new(sink, 3);
        let mut a = WatchedEvaluator::new(Fixed, Some(watch.clone()));
        let mut b = WatchedEvaluator::new(Fixed, Some(watch.clone()));
        for _ in 0..4 {
            a.evaluate(&traversal(), 0).unwrap();
            b.evaluate(&traversal(), 0).unwrap();
        }
        assert_eq!(watch.count(), 8);
        let text = buf.contents();
        // Evaluations 1, 3, 6 of the shared count are sampled.
        let kinds = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"eval\""))
            .count();
        assert_eq!(kinds, 3, "events:\n{text}");
        for line in text.lines() {
            let v = dr_obs::json::parse(line).unwrap();
            assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("eval"));
            assert!(v.get("time_s").unwrap().as_f64().unwrap() > 0.0);
            assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
        }
    }
}
