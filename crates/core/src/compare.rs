//! Run-to-run regression comparison over ledger histories.
//!
//! [`compare_ledgers`] diffs two ledger histories (see [`crate::ledger`])
//! structurally and statistically:
//!
//! * **structural** — when the two head entries share a run identity
//!   (scenario, strategy, seed, iteration budget), the record-set
//!   fingerprints must match exactly (the engine is deterministic), the
//!   mined rule sets must agree, and lint/resilience counters must not
//!   drift;
//! * **statistical** — per-phase wall-clock medians are compared with a
//!   noise band derived from the baseline history's MAD (median absolute
//!   deviation), so a ledger with several runs of the same config gets a
//!   calibrated band while single-run ledgers fall back to an absolute
//!   floor. A phase regresses only when it exceeds both the band and a
//!   relative threshold.
//!
//! The report separates hard `regressions` (worthy of a nonzero exit)
//! from informational `notes` (config drift that makes runs
//! incomparable, new/removed phases).

use dr_obs::json::{self, Value};
use std::path::Path;

use crate::ledger::{LEDGER_FILE, LEDGER_SCHEMA};

/// Schema tag of committed benchmark histories (`BENCH_pipeline.json`,
/// `BENCH_explore.json`): one JSON object holding a `kind` and an
/// `entries` array of benchmark runs, oldest first.
pub const BENCH_SCHEMA: &str = "dr-bench/v1";

/// Thresholds of the statistical comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Relative threshold: a phase regresses only if its median exceeds
    /// `ratio` times the baseline median.
    pub ratio: f64,
    /// Absolute noise floor in seconds: deltas below this never regress
    /// (micro-benchmark phases jitter by scheduler noise).
    pub abs_floor_s: f64,
    /// Noise-band multiplier over the baseline history's MAD.
    pub noise_k: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            ratio: 3.0,
            abs_floor_s: 0.025,
            noise_k: 5.0,
        }
    }
}

/// Outcome of one ledger comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Every comparison line, in report order.
    pub lines: Vec<String>,
    /// Hard regressions (nonzero-exit material).
    pub regressions: Vec<String>,
    /// Informational drift (config differences, new phases).
    pub notes: Vec<String>,
    /// Whether the head entries' record sets were bit-identical.
    pub identical_records: bool,
}

impl CompareReport {
    /// Whether any hard regression was found.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the full report as text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        if self.regressions.is_empty() {
            out.push_str("verdict: OK — no regression\n");
        } else {
            for r in &self.regressions {
                out.push_str(&format!("REGRESSION: {r}\n"));
            }
            out.push_str(&format!(
                "verdict: {} regression(s)\n",
                self.regressions.len()
            ));
        }
        out
    }
}

/// Loads a ledger from `path` — either a `ledger.jsonl` file or a
/// directory containing one — returning the parsed entries whose schema
/// this version understands, in file order.
pub fn load_ledger(path: &Path) -> Result<Vec<Value>, String> {
    let file = if path.is_dir() {
        path.join(LEDGER_FILE)
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read ledger {}: {e}", file.display()))?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| format!("{}:{}: invalid JSON: {e}", file.display(), lineno + 1))?;
        if v.get("schema").and_then(|s| s.as_str()) == Some(LEDGER_SCHEMA) {
            entries.push(v);
        }
    }
    if entries.is_empty() {
        return Err(format!(
            "{}: no entries with schema {LEDGER_SCHEMA}",
            file.display()
        ));
    }
    Ok(entries)
}

/// Whether `path` holds a benchmark history (schema [`BENCH_SCHEMA`])
/// rather than a ledger. Sniffs the first kilobyte, so it is safe to
/// call on arbitrary files.
pub fn is_bench_file(path: &Path) -> bool {
    std::fs::read_to_string(path)
        .map(|text| {
            text.get(..text.len().min(1024))
                .is_some_and(|head| head.contains(BENCH_SCHEMA))
        })
        .unwrap_or(false)
}

/// Loads a benchmark history file, returning its kind (`pipeline` or
/// `explore`) and the entries, oldest first.
pub fn load_bench(path: &Path) -> Result<(String, Vec<Value>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read bench history {}: {e}", path.display()))?;
    let v = json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some(BENCH_SCHEMA) {
        return Err(format!("{}: not a {BENCH_SCHEMA} history", path.display()));
    }
    let kind = v
        .get("kind")
        .and_then(|k| k.as_str())
        .unwrap_or("unknown")
        .to_string();
    let entries = v
        .get("entries")
        .and_then(|e| e.as_arr())
        .map(|a| a.to_vec())
        .unwrap_or_default();
    if entries.is_empty() {
        return Err(format!("{}: history has no entries", path.display()));
    }
    Ok((kind, entries))
}

/// Whether `path` holds a merged fleet event stream (schema
/// `dr-fleet/v1`, see `dr_fleet::FLEET_SCHEMA`) rather than a ledger or
/// bench history. Sniffs the first kilobyte, so it is safe to call on
/// arbitrary files.
pub fn is_fleet_file(path: &Path) -> bool {
    std::fs::read_to_string(path)
        .map(|text| {
            text.get(..text.len().min(1024))
                .is_some_and(|head| head.contains(dr_fleet::FLEET_SCHEMA))
        })
        .unwrap_or(false)
}

/// Loads a merged `dr-fleet/v1` stream, returning the parsed merged
/// lines in file order. Lines with other schemas are skipped, matching
/// the ledger loader's forward-compatibility stance.
pub fn load_fleet(path: &Path) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fleet stream {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line)
            .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), lineno + 1))?;
        if v.get("schema").and_then(|s| s.as_str()) == Some(dr_fleet::FLEET_SCHEMA) {
            entries.push(v);
        }
    }
    if entries.is_empty() {
        return Err(format!(
            "{}: no entries with schema {}",
            path.display(),
            dr_fleet::FLEET_SCHEMA
        ));
    }
    Ok(entries)
}

/// Structural facts of one fleet stream that are stable across timing:
/// worker set, per-worker completion records, and sequence integrity.
fn fleet_shape(entries: &[Value]) -> (Vec<u64>, Vec<(u64, u64)>, bool) {
    let mut workers: Vec<u64> = Vec::new();
    let mut completions: Vec<(u64, u64)> = Vec::new();
    let mut gapless = true;
    for (i, e) in entries.iter().enumerate() {
        if e.get("gseq").and_then(|g| g.as_u64()) != Some(i as u64) {
            gapless = false;
        }
        let Some(w) = e.get("worker").and_then(|w| w.as_u64()) else {
            continue;
        };
        if !workers.contains(&w) {
            workers.push(w);
        }
        if e.path(&["event", "kind"]).and_then(|k| k.as_str()) == Some("shard-done") {
            let records = e
                .path(&["event", "records"])
                .and_then(|r| r.as_u64())
                .unwrap_or_default();
            completions.push((w, records));
        }
    }
    workers.sort_unstable();
    completions.sort_unstable();
    (workers, completions, gapless)
}

/// Compares two merged fleet streams structurally: both must be gapless
/// globally-sequenced streams, cover the same worker set, and complete
/// each shard with the same record count. Event totals (heartbeat
/// cadence is timing-dependent) only ever produce notes.
pub fn compare_fleet(a: &[Value], b: &[Value]) -> CompareReport {
    let mut report = CompareReport {
        identical_records: true,
        ..CompareReport::default()
    };
    report.lines.push(format!(
        "fleet: baseline {} merged events, candidate {}",
        a.len(),
        b.len()
    ));
    let (wa, ca, ga) = fleet_shape(a);
    let (wb, cb, gb) = fleet_shape(b);
    for (name, gapless) in [("baseline", ga), ("candidate", gb)] {
        if !gapless {
            report
                .regressions
                .push(format!("{name} stream is not gapless (gseq has holes)"));
        }
    }
    if wa == wb {
        report
            .lines
            .push(format!("workers: identical ({} workers)", wa.len()));
    } else {
        report
            .regressions
            .push(format!("worker sets differ: {wa:?} vs {wb:?}"));
    }
    if ca == cb {
        report.lines.push(format!(
            "completions: identical ({} shard-done records)",
            ca.len()
        ));
    } else {
        report.identical_records = false;
        report
            .regressions
            .push(format!("shard completions differ: {ca:?} vs {cb:?}"));
    }
    if a.len() != b.len() {
        report
            .notes
            .push("merged event totals differ (heartbeat cadence is timing-dependent)".to_string());
    }
    report
}

/// Flattens one benchmark entry into named scalar series points. For
/// `pipeline` histories every leg contributes its total and per-phase
/// seconds (`mcts/explore`, …); for `explore` histories every leg
/// contributes its wall time (`exhaustive@4t`, …).
fn bench_series(kind: &str, entry: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let legs = entry.get("legs").and_then(|l| l.as_arr());
    for leg in legs.into_iter().flatten() {
        let strategy = leg
            .get("strategy")
            .and_then(|s| s.as_str())
            .unwrap_or("unknown");
        match kind {
            "pipeline" => {
                if let Some(total) = leg.get("total_s").and_then(|t| t.as_f64()) {
                    out.push((format!("{strategy}/total"), total));
                }
                if let Some(Value::Obj(phases)) = leg.get("phases") {
                    for (name, v) in phases {
                        if let Some(s) = v.as_f64() {
                            out.push((format!("{strategy}/{name}"), s));
                        }
                    }
                }
            }
            _ => {
                let threads = leg.get("threads").and_then(|t| t.as_u64()).unwrap_or(0);
                if let Some(wall) = leg.get("wall_s").and_then(|w| w.as_f64()) {
                    out.push((format!("{strategy}@{threads}t"), wall));
                }
            }
        }
    }
    out
}

/// The configuration a benchmark entry ran under; histories are only
/// statistically comparable within one configuration.
fn bench_identity(e: &Value) -> (String, u64) {
    (
        e.get("scenario")
            .and_then(|s| s.as_str())
            .unwrap_or("?")
            .to_string(),
        e.get("seed").and_then(|s| s.as_u64()).unwrap_or_default(),
    )
}

/// Compares two benchmark histories of one kind; `a` is the committed
/// baseline, `b` the fresh run (its last entry is the head). Wall-clock
/// series are compared with the same MAD noise bands as
/// [`compare_ledgers`] phases; entries whose scenario/seed differ from
/// the head's are excluded from the statistics.
pub fn compare_bench(kind: &str, a: &[Value], b: &[Value], opts: &CompareOptions) -> CompareReport {
    // Bench histories carry no record fingerprints; the flag reports
    // the structural side as not-applicable-but-clean.
    let mut report = CompareReport {
        identical_records: true,
        ..CompareReport::default()
    };
    let (Some(ha), Some(hb)) = (a.last(), b.last()) else {
        report.notes.push("one of the histories is empty".into());
        return report;
    };
    let ida = bench_identity(ha);
    let idb = bench_identity(hb);
    report.lines.push(format!(
        "bench {kind}: baseline {} entr{}, candidate {} entr{}",
        a.len(),
        if a.len() == 1 { "y" } else { "ies" },
        b.len(),
        if b.len() == 1 { "y" } else { "ies" }
    ));
    if ida != idb {
        report.notes.push(format!(
            "bench configurations differ (a: {ida:?}, b: {idb:?}); comparison skipped"
        ));
        return report;
    }
    let history = |entries: &[Value]| -> Vec<Vec<(String, f64)>> {
        entries
            .iter()
            .filter(|e| bench_identity(e) == ida)
            .map(|e| bench_series(kind, e))
            .collect()
    };
    let hist_a = history(a);
    let hist_b = history(b);
    let series = |hist: &[Vec<(String, f64)>], name: &str| -> Vec<f64> {
        hist.iter()
            .filter_map(|points| points.iter().find(|(n, _)| n == name).map(|(_, s)| *s))
            .collect()
    };
    let names: Vec<String> = bench_series(kind, ha).into_iter().map(|(n, _)| n).collect();
    for name in &names {
        let mut sa = series(&hist_a, name);
        let mut sb = series(&hist_b, name);
        if sa.is_empty() || sb.is_empty() {
            report
                .notes
                .push(format!("series {name}: missing from one history"));
            continue;
        }
        let med_a = median(&mut sa);
        let med_b = median(&mut sb);
        let band = (opts.noise_k * mad(&sa, med_a)).max(opts.abs_floor_s);
        let delta = med_b - med_a;
        let regressed = delta > band && med_b > opts.ratio * med_a && med_a >= 0.0;
        report.lines.push(format!(
            "{name}: a {:.3} ms, b {:.3} ms, delta {:+.3} ms (band ±{:.3} ms){}",
            med_a * 1e3,
            med_b * 1e3,
            delta * 1e3,
            band * 1e3,
            if regressed { " REGRESSED" } else { "" }
        ));
        if regressed {
            report.regressions.push(format!(
                "{name} slowed {:.3} ms -> {:.3} ms (x{:.1}, band ±{:.3} ms)",
                med_a * 1e3,
                med_b * 1e3,
                med_b / med_a.max(1e-12),
                band * 1e3
            ));
        }
    }
    for (name, _) in bench_series(kind, hb) {
        if !names.contains(&name) {
            report
                .notes
                .push(format!("series {name}: new in candidate history"));
        }
    }
    report
}

/// The run identity a ledger entry was filed under (used to decide
/// which history entries are statistically comparable).
fn identity(e: &Value) -> (String, String, u64, u64) {
    let s = |k: &str| {
        e.get(k)
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string()
    };
    let n = |k: &str| e.get(k).and_then(|v| v.as_u64()).unwrap_or_default();
    (s("scenario"), s("strategy"), n("seed"), n("iterations"))
}

/// `(name, seconds)` pairs of an entry's phase table.
fn phases_of(e: &Value) -> Vec<(String, f64)> {
    match e.get("phases") {
        Some(Value::Obj(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|s| (k.clone(), s)))
            .collect(),
        _ => Vec::new(),
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Median absolute deviation around `med`.
fn mad(xs: &[f64], med: f64) -> f64 {
    let mut devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&mut devs)
}

/// A counter block (`lint` or `resilience`) flattened to `(key, value)`
/// pairs, or `None` when the entry recorded `null`.
fn counters(e: &Value, block: &str) -> Option<Vec<(String, u64)>> {
    match e.get(block) {
        Some(Value::Obj(members)) => Some(
            members
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect(),
        ),
        _ => None,
    }
}

/// The head entry's rule sets as comparable strings.
fn rule_signatures(e: &Value) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(rules) = e.get("rules").and_then(|r| r.as_arr()) {
        for rs in rules {
            let class = rs.get("class").and_then(|c| c.as_u64()).unwrap_or_default();
            let phrases: Vec<&str> = rs
                .get("rules")
                .and_then(|p| p.as_arr())
                .into_iter()
                .flatten()
                .filter_map(|p| p.as_str())
                .collect();
            out.push(format!("class {class}: {}", phrases.join(" AND ")));
        }
    }
    out.sort();
    out
}

/// Compares two ledger histories; `a` is the baseline, `b` the
/// candidate. The last entry of each is the head; earlier entries with
/// the head's identity widen the statistical noise band.
pub fn compare_ledgers(a: &[Value], b: &[Value], opts: &CompareOptions) -> CompareReport {
    let mut report = CompareReport::default();
    let (Some(ha), Some(hb)) = (a.last(), b.last()) else {
        report.notes.push("one of the ledgers is empty".into());
        return report;
    };
    let run_id = |e: &Value| {
        e.path(&["provenance", "run_id"])
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let git = |e: &Value| {
        e.path(&["provenance", "git"])
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    report.lines.push(format!(
        "a: {} (git {}), {} entr{}",
        run_id(ha),
        git(ha),
        a.len(),
        if a.len() == 1 { "y" } else { "ies" }
    ));
    report.lines.push(format!(
        "b: {} (git {}), {} entr{}",
        run_id(hb),
        git(hb),
        b.len(),
        if b.len() == 1 { "y" } else { "ies" }
    ));

    let ida = identity(ha);
    let idb = identity(hb);
    let comparable = ida == idb;
    if !comparable {
        report.notes.push(format!(
            "run identities differ (a: {ida:?}, b: {idb:?}); structural record checks skipped"
        ));
    }

    // Structural: record-set fingerprint. The engine is deterministic,
    // so under one identity the fingerprints must be bit-identical.
    let fp = |e: &Value| {
        e.path(&["records", "fingerprint"])
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let count = |e: &Value| {
        e.path(&["records", "count"])
            .and_then(|v| v.as_u64())
            .unwrap_or_default()
    };
    report.identical_records = fp(ha) == fp(hb) && fp(ha) != "?";
    if comparable {
        if report.identical_records {
            report.lines.push(format!(
                "records: identical ({} records, fingerprint {})",
                count(ha),
                fp(ha)
            ));
        } else {
            report.regressions.push(format!(
                "record set diverged under one identity: {} records / {} vs {} records / {}",
                count(ha),
                fp(ha),
                count(hb),
                fp(hb)
            ));
        }
    }

    // Structural: mined rule sets.
    let ra = rule_signatures(ha);
    let rb = rule_signatures(hb);
    if ra == rb {
        report
            .lines
            .push(format!("rules: identical ({} rulesets)", ra.len()));
    } else {
        let gone: Vec<&String> = ra.iter().filter(|r| !rb.contains(r)).collect();
        let new: Vec<&String> = rb.iter().filter(|r| !ra.contains(r)).collect();
        let msg = format!(
            "rule sets differ: {} removed {gone:?}, {} added {new:?}",
            gone.len(),
            new.len()
        );
        if comparable && report.identical_records {
            report.regressions.push(msg);
        } else {
            report.notes.push(msg);
        }
    }

    // Structural: lint and resilience counter drift. Resilience
    // presence flipping (clean run vs fault injection) is itself drift
    // worth failing on — it means the two runs measured different
    // conditions.
    for block in ["lint", "resilience"] {
        let ca = counters(ha, block);
        let cb = counters(hb, block);
        match (&ca, &cb) {
            (None, None) => report.lines.push(format!("{block}: absent in both")),
            (Some(x), Some(y)) if x == y => {
                report.lines.push(format!("{block}: counters identical"));
            }
            (Some(x), Some(y)) => {
                let mut drift = Vec::new();
                for (k, va) in x {
                    let vb = y
                        .iter()
                        .find(|(kb, _)| kb == k)
                        .map(|(_, v)| *v)
                        .unwrap_or_default();
                    if *va != vb {
                        drift.push(format!("{k} {va} -> {vb}"));
                    }
                }
                report
                    .regressions
                    .push(format!("{block} counters drifted: {}", drift.join(", ")));
            }
            _ => {
                report.regressions.push(format!(
                    "{block} drift: present in {} only",
                    if ca.is_some() { "a" } else { "b" }
                ));
            }
        }
    }

    // Statistical: per-phase medians with a MAD noise band over the
    // baseline history (entries sharing the head's identity).
    let history = |entries: &[Value], id: &(String, String, u64, u64)| -> Vec<Vec<(String, f64)>> {
        entries
            .iter()
            .filter(|e| identity(e) == *id)
            .map(phases_of)
            .collect()
    };
    let hist_a = history(a, &ida);
    let hist_b = history(b, &idb);
    let series = |hist: &[Vec<(String, f64)>], name: &str| -> Vec<f64> {
        hist.iter()
            .filter_map(|phases| phases.iter().find(|(n, _)| n == name).map(|(_, s)| *s))
            .collect()
    };
    let phase_names: Vec<String> = phases_of(ha).into_iter().map(|(n, _)| n).collect();
    for name in &phase_names {
        let mut sa = series(&hist_a, name);
        let mut sb = series(&hist_b, name);
        if sa.is_empty() || sb.is_empty() {
            report
                .notes
                .push(format!("phase {name}: missing from one ledger"));
            continue;
        }
        let med_a = median(&mut sa);
        let med_b = median(&mut sb);
        let band = (opts.noise_k * mad(&sa, med_a)).max(opts.abs_floor_s);
        let delta = med_b - med_a;
        let regressed = delta > band && med_b > opts.ratio * med_a && med_a >= 0.0;
        report.lines.push(format!(
            "phase {name}: a {:.3} ms, b {:.3} ms, delta {:+.3} ms (band ±{:.3} ms){}",
            med_a * 1e3,
            med_b * 1e3,
            delta * 1e3,
            band * 1e3,
            if regressed { " REGRESSED" } else { "" }
        ));
        if regressed {
            report.regressions.push(format!(
                "phase {name} slowed {:.3} ms -> {:.3} ms (x{:.1}, band ±{:.3} ms)",
                med_a * 1e3,
                med_b * 1e3,
                med_b / med_a.max(1e-12),
                band * 1e3
            ));
        }
    }
    for (name, _) in phases_of(hb) {
        if !phase_names.contains(&name) {
            report
                .notes
                .push(format!("phase {name}: new in candidate ledger"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u64, explore_s: f64, fingerprint: &str, resilience: bool) -> Value {
        let res = if resilience {
            "{\"evaluations\":10,\"retries\":2,\"deadlocks\":0,\"budget_kills\":0,\"panics\":0,\"quarantined\":0}".to_string()
        } else {
            "null".to_string()
        };
        let line = format!(
            concat!(
                "{{\"schema\":\"dr-ledger/v1\",",
                "\"provenance\":{{\"run_id\":\"r{}\",\"git\":\"abc\",\"created_unix\":1}},",
                "\"scenario\":\"spmv\",\"strategy\":\"exhaustive\",\"seed\":{},\"iterations\":0,",
                "\"threads\":1,\"config\":{{\"lint\":false,\"faults_active\":{}}},",
                "\"phases\":{{\"explore\":{},\"train\":0.001}},",
                "\"records\":{{\"count\":8,\"fingerprint\":\"{}\"}},",
                "\"lint\":null,\"resilience\":{},",
                "\"rules\":[{{\"class\":0,\"samples\":4,\"pure\":true,\"rules\":[\"x\"],",
                "\"support\":[0],\"class_split\":[4,0]}}]}}"
            ),
            seed, seed, resilience, explore_s, fingerprint, res
        );
        json::parse(&line).unwrap()
    }

    #[test]
    fn identical_heads_pass() {
        let a = vec![entry(1, 0.010, "aaaa", false)];
        let b = vec![entry(1, 0.011, "aaaa", false)];
        let r = compare_ledgers(&a, &b, &CompareOptions::default());
        assert!(!r.is_regression(), "{:?}", r.regressions);
        assert!(r.identical_records);
    }

    #[test]
    fn fingerprint_divergence_regresses() {
        let a = vec![entry(1, 0.010, "aaaa", false)];
        let b = vec![entry(1, 0.010, "bbbb", false)];
        let r = compare_ledgers(&a, &b, &CompareOptions::default());
        assert!(r.is_regression());
        assert!(r.regressions[0].contains("record set diverged"));
    }

    #[test]
    fn phase_blowup_regresses_but_jitter_does_not() {
        let a = vec![entry(1, 0.010, "aaaa", false)];
        let slow = vec![entry(1, 10.0, "aaaa", false)];
        let r = compare_ledgers(&a, &slow, &CompareOptions::default());
        assert!(r.is_regression());
        assert!(r.regressions.iter().any(|m| m.contains("phase explore")));
        // Below the absolute floor: 12 ms vs 10 ms never regresses.
        let jitter = vec![entry(1, 0.012, "aaaa", false)];
        let r = compare_ledgers(&a, &jitter, &CompareOptions::default());
        assert!(!r.is_regression(), "{:?}", r.regressions);
    }

    #[test]
    fn resilience_presence_flip_is_drift() {
        let a = vec![entry(1, 0.010, "aaaa", false)];
        let b = vec![entry(1, 0.010, "aaaa", true)];
        let r = compare_ledgers(&a, &b, &CompareOptions::default());
        assert!(r.is_regression());
        assert!(r.regressions.iter().any(|m| m.contains("resilience")));
    }

    #[test]
    fn different_seeds_note_but_skip_structural() {
        let a = vec![entry(1, 0.010, "aaaa", false)];
        let b = vec![entry(2, 0.010, "bbbb", false)];
        let r = compare_ledgers(&a, &b, &CompareOptions::default());
        assert!(!r.is_regression(), "{:?}", r.regressions);
        assert!(!r.notes.is_empty());
    }

    fn bench_entry(explore_s: f64) -> Value {
        let line = format!(
            concat!(
                "{{\"scenario\":\"small\",\"seed\":213,\"mcts_budget\":400,",
                "\"space_traversals\":36,\"legs\":[",
                "{{\"strategy\":\"mcts\",\"threads\":1,\"records\":36,",
                "\"records_per_sec\":100.0,\"total_s\":{},",
                "\"phases\":{{\"explore\":{},\"train\":0.002}}}}]}}"
            ),
            explore_s + 0.002,
            explore_s
        );
        json::parse(&line).unwrap()
    }

    #[test]
    fn bench_history_within_band_passes() {
        let a: Vec<Value> = [0.010, 0.012, 0.011]
            .iter()
            .map(|s| bench_entry(*s))
            .collect();
        let b = vec![bench_entry(0.013)];
        let r = compare_bench("pipeline", &a, &b, &CompareOptions::default());
        assert!(!r.is_regression(), "{:?}", r.regressions);
        assert!(r.lines.iter().any(|l| l.contains("mcts/explore")));
    }

    #[test]
    fn bench_blowup_regresses() {
        let a: Vec<Value> = [0.010, 0.012, 0.011]
            .iter()
            .map(|s| bench_entry(*s))
            .collect();
        let b = vec![bench_entry(5.0)];
        let r = compare_bench("pipeline", &a, &b, &CompareOptions::default());
        assert!(r.is_regression());
        assert!(r.regressions.iter().any(|m| m.contains("mcts/explore")));
    }

    #[test]
    fn bench_config_drift_skips_comparison() {
        let a = vec![bench_entry(0.010)];
        let mut line = bench_entry(5.0);
        if let Value::Obj(members) = &mut line {
            for (k, v) in members.iter_mut() {
                if k == "seed" {
                    *v = Value::Num(999.0);
                }
            }
        }
        let r = compare_bench("pipeline", &a, &[line], &CompareOptions::default());
        assert!(!r.is_regression(), "{:?}", r.regressions);
        assert!(r.notes.iter().any(|n| n.contains("configurations differ")));
    }

    fn fleet_line(gseq: u64, worker: &str, kind: &str, records: u64) -> Value {
        let line = format!(
            concat!(
                "{{\"schema\":\"dr-fleet/v1\",\"gseq\":{},\"worker\":{},\"seen_s\":0.5,",
                "\"event\":{{\"schema\":\"dr-events/v1\",\"run\":\"r\",\"seq\":0,\"t_s\":0.1,",
                "\"kind\":\"{}\",\"records\":{}}}}}"
            ),
            gseq, worker, kind, records
        );
        json::parse(&line).unwrap()
    }

    #[test]
    fn fleet_streams_with_matching_shape_pass() {
        let a = vec![
            fleet_line(0, "null", "worker-spawn", 0),
            fleet_line(1, "0", "heartbeat", 0),
            fleet_line(2, "0", "shard-done", 9),
        ];
        let b = vec![
            fleet_line(0, "0", "heartbeat", 0),
            fleet_line(1, "0", "heartbeat", 0),
            fleet_line(2, "0", "shard-done", 9),
            fleet_line(3, "null", "swarm-done", 0),
        ];
        let r = compare_fleet(&a, &b);
        assert!(!r.is_regression(), "{:?}", r.regressions);
        assert!(r.notes.iter().any(|n| n.contains("totals differ")));
    }

    #[test]
    fn fleet_gaps_and_divergent_completions_regress() {
        let ok = vec![fleet_line(0, "0", "shard-done", 9)];
        let gappy = vec![
            fleet_line(0, "0", "heartbeat", 0),
            fleet_line(5, "0", "shard-done", 9),
        ];
        let r = compare_fleet(&ok, &gappy);
        assert!(
            r.regressions.iter().any(|m| m.contains("not gapless")),
            "{:?}",
            r.regressions
        );
        let fewer = vec![fleet_line(0, "0", "shard-done", 4)];
        let r = compare_fleet(&ok, &fewer);
        assert!(r
            .regressions
            .iter()
            .any(|m| m.contains("completions differ")));
        assert!(!r.identical_records);
    }

    #[test]
    fn mad_band_widens_with_history() {
        // Baseline history jitters between 10 and 90 ms; a 100 ms
        // candidate sits inside the calibrated noise band even though
        // it exceeds the absolute floor and ratio vs the low samples.
        let a: Vec<Value> = [0.010, 0.090, 0.050, 0.080, 0.020]
            .iter()
            .map(|s| entry(1, *s, "aaaa", false))
            .collect();
        let b = vec![entry(1, 0.100, "aaaa", false)];
        let r = compare_ledgers(&a, &b, &CompareOptions::default());
        assert!(!r.is_regression(), "{:?}", r.regressions);
    }
}
