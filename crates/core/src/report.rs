//! Run reports: one aggregated observability artifact per pipeline run.
//!
//! A [`RunReport`] collects everything the instrumented pipeline
//! observed — wall-clock phase timings (explore → label → featurize →
//! train → rules), accumulated simulator statistics, the search's final
//! telemetry row, and the mined-rule summary — rendered either as
//! human-readable text or as a single JSON object for downstream
//! tooling.

use crate::pipeline::PipelineResult;
use dr_mcts::{SearchTelemetry, TreeStats};
use dr_obs::{json, Phases};
use dr_sim::SimStats;
use std::sync::OnceLock;

/// Identity of one pipeline run: who produced this artifact, from which
/// source tree, and when. Reports and ledger entries carry it so runs
/// can be compared across machines and commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Run identifier: the `DR_RUN_ID` environment variable when set,
    /// otherwise a generated `run-<unix>-<nanos>-<pid>` value.
    pub run_id: String,
    /// `git describe --always --dirty` of the working tree (`unknown`
    /// when git or the repository is unavailable).
    pub git: String,
    /// Capture time, seconds since the Unix epoch.
    pub created_unix: u64,
}

impl Provenance {
    /// Captures the current run's identity. The git description is
    /// resolved once per process (it forks `git`); the run id is read
    /// fresh so tests can scope `DR_RUN_ID` per run.
    pub fn capture() -> Self {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default();
        let created_unix = now.as_secs();
        let run_id = std::env::var("DR_RUN_ID")
            .ok()
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| {
                format!(
                    "run-{created_unix}-{}-{}",
                    now.subsec_nanos(),
                    std::process::id()
                )
            });
        Provenance {
            run_id,
            git: git_describe(),
            created_unix,
        }
    }

    /// Renders the provenance as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"run_id\":\"{}\",\"git\":\"{}\",\"created_unix\":{}}}",
            json::escape(&self.run_id),
            json::escape(&self.git),
            self.created_unix
        )
    }
}

/// `git describe --always --dirty`, resolved once per process.
fn git_describe() -> String {
    static GIT: OnceLock<String> = OnceLock::new();
    GIT.get_or_init(|| {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
    .clone()
}

/// The search's final state, condensed from its telemetry history.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSummary {
    /// Strategy name (`exhaustive`, `mcts`, or `random`).
    pub strategy: String,
    /// Iterations executed.
    pub iterations: u64,
    /// Distinct traversals benchmarked.
    pub unique_traversals: usize,
    /// Fastest measured time (seconds).
    pub best_time: f64,
    /// Slowest measured time (seconds).
    pub worst_time: f64,
    /// Materialized tree nodes (0 for tree-less strategies).
    pub tree_nodes: usize,
    /// Deepest materialized tree node.
    pub max_depth: usize,
    /// Final tree statistics straight from the search engine, merged
    /// across root-parallel workers (`None` for tree-less strategies).
    /// Unlike `tree_nodes`/`max_depth` — which come from the last
    /// telemetry row and are worker-local on parallel runs — these
    /// cover every worker's tree.
    pub tree: Option<TreeStats>,
    /// Whether the run provably covered the whole design space.
    pub exhausted: bool,
}

impl SearchSummary {
    /// Condenses a telemetry history into its final state. Callers that
    /// have the engine's final [`TreeStats`] should attach them via
    /// [`SearchSummary::with_tree`].
    pub fn from_telemetry(strategy: &str, telemetry: &SearchTelemetry) -> Self {
        let last = telemetry.last();
        SearchSummary {
            strategy: strategy.to_string(),
            iterations: last.map_or(0, |r| r.iteration),
            unique_traversals: last.map_or(0, |r| r.unique_traversals),
            best_time: last.map_or(f64::NAN, |r| r.best_time),
            worst_time: last.map_or(f64::NAN, |r| r.worst_time),
            tree_nodes: last.map_or(0, |r| r.tree_nodes),
            max_depth: last.map_or(0, |r| r.max_depth),
            tree: None,
            exhausted: false,
        }
    }

    /// Attaches the engine's final tree statistics and exhaustion
    /// verdict; when present, the merged counts supersede the
    /// worker-local `tree_nodes`/`max_depth` telemetry values.
    pub fn with_tree(mut self, tree: Option<TreeStats>, exhausted: bool) -> Self {
        if let Some(t) = &tree {
            self.tree_nodes = t.nodes;
            self.max_depth = t.max_depth;
        }
        self.tree = tree;
        self.exhausted = exhausted;
        self
    }

    pub(crate) fn to_json(&self) -> String {
        let tree = self.tree.map_or("null".to_string(), |t| {
            format!(
                concat!(
                    "{{\"nodes\":{},\"max_depth\":{},\"fully_explored\":{},",
                    "\"rollouts\":{},\"t_min\":{},\"t_max\":{}}}"
                ),
                t.nodes,
                t.max_depth,
                t.fully_explored,
                t.rollouts,
                json::number(t.t_min),
                json::number(t.t_max)
            )
        });
        format!(
            concat!(
                "{{\"strategy\":\"{}\",\"iterations\":{},\"unique_traversals\":{},",
                "\"best_time\":{},\"worst_time\":{},\"tree_nodes\":{},\"max_depth\":{},",
                "\"tree\":{},\"exhausted\":{}}}"
            ),
            json::escape(&self.strategy),
            self.iterations,
            self.unique_traversals,
            json::number(self.best_time),
            json::number(self.worst_time),
            self.tree_nodes,
            self.max_depth,
            tree,
            self.exhausted
        )
    }
}

/// Aggregate static-analysis counters of one run's lint stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintSummary {
    /// Distinct schedules linted.
    pub schedules: u64,
    /// Error-severity diagnostics (races, deadlocks, malformed schedules).
    pub errors: u64,
    /// Warning-severity diagnostics (mostly redundant synchronization).
    pub warnings: u64,
    /// Happens-before races (`HB*` codes).
    pub races: u64,
    /// MPI deadlocks (`MPI103`/`MPI104`).
    pub deadlocks: u64,
    /// Redundant synchronizations (`RS*` codes).
    pub redundant_syncs: u64,
    /// Schedules covered by the space-level incremental lint pass
    /// (counted separately from the per-traversal `schedules`).
    pub space_schedules: u64,
    /// Happens-before node expansions the incremental engine performed.
    pub hb_expansions: u64,
    /// Node expansions a cold per-schedule pass would have performed for
    /// the same schedules (the incremental engine's savings baseline).
    pub cold_hb_expansions: u64,
    /// Subtrees the space walk skipped as provably deadlocked.
    pub pruned_subtrees: u64,
}

impl LintSummary {
    pub(crate) fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"schedules\":{},\"errors\":{},\"warnings\":{},",
                "\"races\":{},\"deadlocks\":{},\"redundant_syncs\":{},",
                "\"space_schedules\":{},\"hb_expansions\":{},",
                "\"cold_hb_expansions\":{},\"pruned_subtrees\":{}}}"
            ),
            self.schedules,
            self.errors,
            self.warnings,
            self.races,
            self.deadlocks,
            self.redundant_syncs,
            self.space_schedules,
            self.hb_expansions,
            self.cold_hb_expansions,
            self.pruned_subtrees
        )
    }
}

/// Aggregate resilience counters of one chaos run (absent unless fault
/// injection was active).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSummary {
    /// Benchmark attempts under the fault plan (including retries).
    pub evaluations: u64,
    /// Reseeded retry attempts after a failed evaluation.
    pub retries: u64,
    /// Fault-induced deadlocks absorbed by the retry layer.
    pub deadlocks: u64,
    /// Watchdog budget terminations absorbed by the retry layer.
    pub budget_kills: u64,
    /// Panics caught and converted to structured errors.
    pub panics: u64,
    /// Traversals dropped after exhausting their retry budget.
    pub quarantined: u64,
    /// Total milliseconds of capped-exponential retry backoff. The
    /// delays are derived deterministically from evaluation seeds, so
    /// this total is reproducible and comparable across runs.
    pub retry_delay_ms: u64,
}

impl ResilienceSummary {
    pub(crate) fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"evaluations\":{},\"retries\":{},\"deadlocks\":{},",
                "\"budget_kills\":{},\"panics\":{},\"quarantined\":{},",
                "\"retry_delay_ms\":{}}}"
            ),
            self.evaluations,
            self.retries,
            self.deadlocks,
            self.budget_kills,
            self.panics,
            self.quarantined,
            self.retry_delay_ms
        )
    }
}

/// Mined-rule outcomes worth reporting alongside the run.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningSummary {
    /// Performance classes found by labeling.
    pub num_classes: usize,
    /// Decision-tree training error (0 = perfect).
    pub tree_error: f64,
    /// Rulesets extracted (decision-tree leaves).
    pub num_rulesets: usize,
}

/// One pipeline run's aggregated observability artifact.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Identity of the run (run id, git description, capture time).
    pub provenance: Provenance,
    /// Wall-clock seconds per pipeline phase.
    pub phases: Phases,
    /// Simulator statistics summed across every benchmark sample of the
    /// exploration (absent when the evaluator did not run the
    /// simulator).
    pub sim: Option<SimStats>,
    /// Final search state.
    pub search: SearchSummary,
    /// Mined-rule outcomes.
    pub mining: MiningSummary,
    /// Lint-stage counters (absent unless the run enabled linting).
    pub lint: Option<LintSummary>,
    /// Resilience counters (absent unless fault injection was active).
    pub resilience: Option<ResilienceSummary>,
}

impl RunReport {
    /// Assembles a report from the instrumented pipeline's pieces.
    pub fn new(
        phases: Phases,
        sim: Option<SimStats>,
        search: SearchSummary,
        result: &PipelineResult,
    ) -> Self {
        RunReport {
            provenance: Provenance::capture(),
            phases,
            sim,
            search,
            mining: MiningSummary {
                num_classes: result.labeling.num_classes,
                tree_error: result.search.error,
                num_rulesets: result.rulesets.len(),
            },
            lint: None,
            resilience: None,
        }
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"provenance\":{},\"phases\":{},\"sim\":{},\"search\":{},\"mining\":{{\"num_classes\":{},\"tree_error\":{},\"num_rulesets\":{}}},\"lint\":{},\"resilience\":{}}}",
            self.provenance.to_json(),
            self.phases.to_json(),
            self.sim.as_ref().map_or("null".to_string(), |s| s.to_json()),
            self.search.to_json(),
            self.mining.num_classes,
            json::number(self.mining.tree_error),
            self.mining.num_rulesets,
            self.lint
                .as_ref()
                .map_or("null".to_string(), |l| l.to_json()),
            self.resilience
                .map_or("null".to_string(), |r| r.to_json())
        )
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: {} (git {})\n",
            self.provenance.run_id, self.provenance.git
        ));
        out.push_str("phases:\n");
        out.push_str(&self.phases.render_text());
        out.push_str(&format!(
            "search: {} — {} iterations, {} unique traversals\n",
            self.search.strategy, self.search.iterations, self.search.unique_traversals
        ));
        out.push_str(&format!(
            "  time range {:.1} µs .. {:.1} µs, tree {} nodes (depth {})\n",
            self.search.best_time * 1e6,
            self.search.worst_time * 1e6,
            self.search.tree_nodes,
            self.search.max_depth
        ));
        if let Some(t) = &self.search.tree {
            out.push_str(&format!(
                "  tree: {} rollouts, {} fully explored nodes, space {}\n",
                t.rollouts,
                t.fully_explored,
                if self.search.exhausted {
                    "exhausted"
                } else {
                    "not exhausted"
                }
            ));
        }
        if let Some(sim) = &self.sim {
            out.push_str(&format!(
                "simulator: {} runs, {} instructions, {} eager / {} rendezvous msgs, {} bytes\n",
                sim.runs, sim.instructions, sim.eager_msgs, sim.rendezvous_msgs, sim.bytes_moved
            ));
            out.push_str(&format!(
                "  sync ops: {} CER, {} CES, {} CSWE; {} collective\n",
                sim.sync_cer, sim.sync_ces, sim.sync_cswe, sim.collective_ops
            ));
        }
        if let Some(lint) = &self.lint {
            out.push_str(&format!(
                "lint: {} schedules — {} errors ({} races, {} deadlocks), \
                 {} warnings ({} redundant syncs)\n",
                lint.schedules,
                lint.errors,
                lint.races,
                lint.deadlocks,
                lint.warnings,
                lint.redundant_syncs
            ));
            if lint.space_schedules > 0 {
                out.push_str(&format!(
                    "  space lint: {} schedules — {} hb expansions \
                     (cold {}), {} pruned subtrees\n",
                    lint.space_schedules,
                    lint.hb_expansions,
                    lint.cold_hb_expansions,
                    lint.pruned_subtrees
                ));
            }
        }
        if let Some(r) = &self.resilience {
            out.push_str(&format!(
                "resilience: {} evaluations ({} retries, {} ms backoff) — \
                 {} deadlocks, {} budget kills, {} panics, {} quarantined\n",
                r.evaluations,
                r.retries,
                r.retry_delay_ms,
                r.deadlocks,
                r.budget_kills,
                r.panics,
                r.quarantined
            ));
        }
        out.push_str(&format!(
            "mining: {} classes, tree error {:.4}, {} rulesets\n",
            self.mining.num_classes, self.mining.tree_error, self.mining.num_rulesets
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_mcts::TelemetryRow;

    fn telemetry() -> SearchTelemetry {
        let mut t = SearchTelemetry::new();
        t.push(TelemetryRow {
            iteration: 4,
            unique_traversals: 3,
            best_time: 1e-4,
            worst_time: 4e-4,
            tree_nodes: 9,
            max_depth: 3,
            rollout_len: 2,
        });
        t
    }

    #[test]
    fn summary_condenses_last_row() {
        let s = SearchSummary::from_telemetry("mcts", &telemetry());
        assert_eq!(s.strategy, "mcts");
        assert_eq!(s.iterations, 4);
        assert_eq!(s.unique_traversals, 3);
        assert_eq!(s.tree_nodes, 9);
    }

    #[test]
    fn empty_telemetry_yields_zeroed_summary() {
        let s = SearchSummary::from_telemetry("random", &SearchTelemetry::new());
        assert_eq!(s.iterations, 0);
        assert!(s.best_time.is_nan());
    }

    #[test]
    fn provenance_is_valid_json_with_a_run_id() {
        let p = Provenance::capture();
        assert!(!p.run_id.is_empty());
        assert!(!p.git.is_empty());
        let js = p.to_json();
        json::validate(&js).expect("provenance JSON validates");
        let v = json::parse(&js).expect("provenance JSON parses");
        assert!(v.path(&["run_id"]).and_then(|r| r.as_str()).is_some());
        assert!(v.path(&["created_unix"]).and_then(|c| c.as_u64()).is_some());
    }
}
