//! Exploration strategies: how the `(sequence, time)` sample set is
//! collected before rule mining.
//!
//! Every strategy has a serial backend ([`explore_instrumented`]) and a
//! parallel one ([`explore_parallel`]). The parallel engine is built so
//! that the *record set* — which traversals were measured, and what each
//! measurement returned — is a pure function of the strategy and its
//! seed, independent of the thread count. The enabling invariant is that
//! each evaluation is seeded by [`dr_dag::eval_seed`], a function of the
//! traversal being measured rather than of when, where, or by which
//! worker it is discovered.

use dr_dag::{eval_seed, DecisionSpace, Traversal};
use dr_mcts::{
    CachingEvaluator, Evaluator, ExploredRecord, Mcts, MctsConfig, PruneHook, SearchTelemetry,
    SharedMcts, TelemetryRow, TreeStats,
};
use dr_obs::events::EventSink;
use dr_par::{
    par_map_stream_isolated, par_map_stream_observed, split_budget, CacheStats, ItemOutcome,
    PoolObserver, StripedCache,
};
use dr_sim::{BenchResult, SimError, SimStats};
use dr_trace::{SpanId, Tracer};
use std::collections::HashMap;

/// Master seed of the exhaustive strategy's evaluation seeds (the
/// strategy has no user-facing seed of its own). Shared with the shard
/// runner so a shard's measurements are bit-identical to the unsharded
/// run's.
pub(crate) const EXHAUSTIVE_MASTER_SEED: u64 = 0xE0E0_0000;

/// Per-worker search-seed decorrelator for root-parallel MCTS
/// (worker 0 keeps the configured seed unchanged).
const WORKER_SEED_MIX: u64 = 0xA076_1D64_78BD_642F;

/// MCTS iteration-span sampling rate: record one `mcts-iter` span every
/// N iterations (`DR_TRACE_MCTS_RATE`, default 16, minimum 1). Sampling
/// keeps traces of long searches bounded without losing the shape of the
/// search.
fn mcts_trace_every() -> usize {
    std::env::var("DR_TRACE_MCTS_RATE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(16)
        .max(1)
}

/// Event-stream sampling rate: emit one sampled `mcts-iter` / `eval`
/// event every N occurrences (`DR_EVENTS_RATE`, default 16, minimum 1).
/// Sampling bounds the event stream's overhead on long runs the same
/// way `DR_TRACE_MCTS_RATE` bounds the trace.
pub fn events_rate() -> usize {
    std::env::var("DR_EVENTS_RATE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(16)
        .max(1)
}

/// Attaches a sampled event lane to a search when a live sink is
/// present. The record set is unaffected: evaluation seeds are a pure
/// function of the traversal.
fn attach_mcts_events<E: Evaluator>(mcts: &mut Mcts<'_, E>, events: Option<&EventSink>) {
    if let Some(sink) = events {
        if sink.is_enabled() {
            mcts.set_events(sink.clone(), events_rate());
        }
    }
}

/// Attaches a static-prune hook to a serial search when one is
/// configured. Pruning cuts provably-doomed subtrees before any rollout
/// enters them; it never affects which traversals *outside* the pruned
/// subtrees are measured or what those measurements return.
fn attach_mcts_prune<E: Evaluator>(mcts: &mut Mcts<'_, E>, prune: Option<&PruneHook>) {
    if let Some(hook) = prune {
        mcts.set_prune(hook.clone());
    }
}

/// Forwards pool worker lifecycle callbacks to the event stream as
/// `worker-start` / `worker-end` events.
struct SinkPoolObserver {
    sink: EventSink,
}

impl PoolObserver for SinkPoolObserver {
    fn worker_start(&self, worker: usize) {
        self.sink.emit("worker-start", &[("worker", worker.into())]);
    }

    fn worker_end(&self, worker: usize, items: usize) {
        self.sink.emit(
            "worker-end",
            &[("worker", worker.into()), ("items", items.into())],
        );
    }
}

/// Attaches a sampled iteration-span lane named `mcts-{worker}` to a
/// search, with a zero-length `mcts-dispatch` marker span carrying the
/// causal edge from the pipeline's explore span.
fn attach_mcts_lane<E: Evaluator>(
    mcts: &mut Mcts<'_, E>,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    worker: usize,
) {
    if !tracer.is_enabled() {
        return;
    }
    let mut lane = tracer.lane(&format!("mcts-{worker}"));
    if let Some(d) = dispatch {
        lane.enter("mcts-dispatch");
        lane.follows_from(d);
        lane.exit();
    }
    mcts.set_trace(lane, mcts_trace_every());
}

/// How to collect the sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Benchmark every traversal of the space (feasible only for small
    /// DAGs; this is the paper's canonical 2036-implementation dataset).
    Exhaustive,
    /// Monte-Carlo tree search with the given iteration budget
    /// (paper Section III-C).
    Mcts {
        /// Number of search iterations (rollouts).
        iterations: usize,
        /// Search hyperparameters.
        config: MctsConfig,
    },
    /// Uniform random sampling with the given rollout budget (the
    /// baseline the paper's future work calls for).
    Random {
        /// Number of rollouts.
        iterations: usize,
        /// Sampling seed.
        seed: u64,
    },
}

impl Strategy {
    /// The strategy's short name, used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Mcts { .. } => "mcts",
            Strategy::Random { .. } => "random",
        }
    }
}

/// Which parallel engine backs [`Strategy::Mcts`]. Non-MCTS strategies
/// ignore the backend (they have a single parallel engine each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchBackend {
    /// Serial tree at one thread (keeping the single-thread hot path
    /// free of batching overhead), shared tree above.
    #[default]
    Auto,
    /// One shared tree with virtual-loss batch assembly at every thread
    /// count (batch width = thread count).
    Shared,
    /// Legacy root parallelism: one tree per worker with decorrelated
    /// search seeds, merged afterwards.
    Root,
}

impl SearchBackend {
    /// Resolves the backend from the `DR_SEARCH` environment variable:
    /// `shared` / `root` select explicitly, anything else (or unset)
    /// means [`SearchBackend::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("DR_SEARCH").as_deref().map(str::trim) {
            Ok("shared") => SearchBackend::Shared,
            Ok("root") => SearchBackend::Root,
            _ => SearchBackend::Auto,
        }
    }

    /// The backend's short name, used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SearchBackend::Auto => "auto",
            SearchBackend::Shared => "shared",
            SearchBackend::Root => "root",
        }
    }
}

/// Collects explored records under a strategy.
pub fn explore<E: Evaluator>(
    space: &DecisionSpace,
    eval: E,
    strategy: Strategy,
) -> Result<Vec<ExploredRecord>, SimError> {
    explore_instrumented(space, eval, strategy).map(|(records, _, _)| records)
}

/// Like [`explore`], additionally returning the per-iteration
/// [`SearchTelemetry`] and the evaluator's accumulated [`SimStats`]
/// (`None` for evaluators that do not run the simulator).
pub fn explore_instrumented<E: Evaluator>(
    space: &DecisionSpace,
    mut eval: E,
    strategy: Strategy,
) -> Result<(Vec<ExploredRecord>, SearchTelemetry, Option<SimStats>), SimError> {
    match strategy {
        Strategy::Exhaustive => {
            let mut pairs = Vec::new();
            for t in space.enumerate() {
                let result = eval.evaluate(&t, eval_seed(EXHAUSTIVE_MASTER_SEED, &t))?;
                pairs.push((t, result));
            }
            let (records, telemetry) = exhaustive_records(pairs);
            let stats = eval.sim_stats().cloned();
            Ok((records, telemetry, stats))
        }
        Strategy::Mcts { iterations, config } => {
            let mut mcts = Mcts::new(space, eval, config);
            mcts.run(iterations)?;
            let (records, telemetry, eval) = mcts.into_parts();
            Ok((records, telemetry, eval.sim_stats().cloned()))
        }
        Strategy::Random { iterations, seed } => {
            let (records, telemetry) = dr_mcts::random_search_telemetry(
                space,
                |t: &Traversal, s: u64| eval.evaluate(t, s),
                iterations,
                seed,
            )?;
            let stats = eval.sim_stats().cloned();
            Ok((records, telemetry, stats))
        }
    }
}

/// Everything one (possibly parallel) exploration run produced.
#[derive(Debug, Clone)]
pub struct ExploreOutput {
    /// Distinct explored implementations with their measurements.
    pub records: Vec<ExploredRecord>,
    /// One row per search iteration (renumbered globally when merged
    /// from several workers).
    pub telemetry: SearchTelemetry,
    /// Simulator statistics merged across workers (`None` when the
    /// evaluators do not run the simulator). The `u64` counters equal
    /// the serial run's exactly; floating-point aggregates may differ
    /// in the last bits because summation order differs.
    pub sim: Option<SimStats>,
    /// Hit/miss counters of the shared result cache (all zero for
    /// strategies that never re-visit a traversal).
    pub cache: CacheStats,
    /// Number of worker threads actually used.
    pub threads: usize,
    /// Traversals quarantined by the resilient backends, with the error
    /// that killed their final attempt (always empty on the fault-free
    /// paths; root-parallel MCTS reports counts only, via
    /// [`ExploreOutput::quarantined`]).
    pub failures: Vec<(Traversal, SimError)>,
    /// Total traversals dropped instead of measured (≥ `failures.len()`;
    /// the difference is MCTS-internal quarantines).
    pub quarantined: u64,
    /// Subtrees retired by a static-prune hook before any rollout
    /// entered them (summed across workers; zero without a hook or for
    /// non-MCTS strategies).
    pub pruned: u64,
    /// Final search-tree statistics (`None` for non-MCTS strategies).
    /// For root-parallel runs the per-worker trees are merged: node,
    /// rollout and fully-explored counts are summed, depth and time
    /// bounds take the extremes.
    pub tree: Option<TreeStats>,
    /// Whether the run provably covered the whole space: always `true`
    /// for `Exhaustive`, `true` for MCTS iff (any worker's) tree
    /// exhausted, always `false` for `Random`.
    pub exhausted: bool,
}

/// Parallel [`explore_instrumented`]: evaluates with `threads` workers,
/// each owning an evaluator built by `make_eval`.
///
/// For a fixed strategy/seed the returned record *set* — traversal and
/// measurement pairs — is identical for every thread count (for
/// [`Strategy::Mcts`] this holds whenever the budget exhausts the space;
/// under a partial budget different worker trajectories may surface
/// different subsets, though every measurement that does appear is still
/// thread-count-invariant). `threads <= 1` delegates to the serial path.
///
/// * `Exhaustive` streams the lazy enumeration through a chunked worker
///   pool and restores canonical order afterwards, so even the record
///   *order* matches the serial backend bit for bit.
/// * `Random` generates the rollout sequence serially (each iteration's
///   rollout is a pure function of `(seed, iteration)`), deduplicates,
///   and fans out only the expensive evaluations.
/// * `Mcts` runs root-parallel: one tree per worker with a decorrelated
///   search seed, sharing one [`StripedCache`] so no worker re-simulates
///   a traversal another has measured. Records are merged worker-major
///   and deduplicated.
pub fn explore_parallel<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_traced(
        space,
        make_eval,
        strategy,
        threads,
        &Tracer::disabled(),
        None,
    )
}

/// [`explore_parallel`] with causal tracing: worker and chunk spans on
/// the pool paths, sampled per-iteration spans on the MCTS paths, each
/// lane linked back to the pipeline's `dispatch` span (usually the
/// explore-phase span) via a `follows_from` edge. A disabled tracer
/// makes this identical to [`explore_parallel`].
///
/// Tracing never perturbs results: evaluation seeds are a pure function
/// of the traversal, so the record set with tracing on equals the record
/// set with tracing off, bit for bit.
pub fn explore_parallel_traced<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_watched(space, make_eval, strategy, threads, tracer, dispatch, None)
}

/// [`explore_parallel_traced`] with a live event stream: sampled
/// `mcts-iter` events from the searches and `worker-start` /
/// `worker-end` lifecycle events from the pool paths, all sharing the
/// sink's monotone sequence. A `None` or disabled sink makes this
/// identical to [`explore_parallel_traced`]; either way the record set
/// is bit-identical to the unobserved run.
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel_watched<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_watched_backend(
        space,
        make_eval,
        strategy,
        threads,
        tracer,
        dispatch,
        events,
        SearchBackend::Auto,
        None,
    )
}

/// [`explore_parallel`] with an explicit MCTS [`SearchBackend`] (tests
/// pin backends through this instead of mutating `DR_SEARCH`).
pub fn explore_parallel_backend<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    backend: SearchBackend,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_watched_backend(
        space,
        make_eval,
        strategy,
        threads,
        &Tracer::disabled(),
        None,
        None,
        backend,
        None,
    )
}

/// The fully-parameterized parallel engine: tracing, events, an explicit
/// MCTS [`SearchBackend`], and an optional static-prune hook (MCTS
/// only; see [`dr_mcts::PruneHook`]).
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel_watched_backend<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
    backend: SearchBackend,
    prune: Option<PruneHook>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    let threads = threads.max(1);
    if threads == 1 && backend != SearchBackend::Shared {
        // The serial MCTS path keeps its tree in-process (no shared
        // cache, no batch assembly), so it is traced here rather than
        // via the parallel backends; the pool strategies reach their
        // traced serial paths below.
        if let Strategy::Mcts { iterations, config } = strategy {
            let mut mcts = Mcts::new(space, make_eval(), config);
            attach_mcts_lane(&mut mcts, tracer, dispatch, 0);
            attach_mcts_events(&mut mcts, events);
            attach_mcts_prune(&mut mcts, prune.as_ref());
            mcts.run(iterations)?;
            let tree = mcts.stats();
            let exhausted = mcts.is_exhausted();
            let pruned = mcts.pruned();
            let (records, telemetry, eval) = mcts.into_parts();
            let sim = eval.sim_stats().cloned();
            return Ok(ExploreOutput {
                records,
                telemetry,
                sim,
                cache: CacheStats::default(),
                threads: 1,
                failures: Vec::new(),
                quarantined: 0,
                pruned,
                tree: Some(tree),
                exhausted,
            });
        }
    }
    match strategy {
        Strategy::Exhaustive => {
            exhaustive_parallel(space, &make_eval, threads, tracer, dispatch, events)
        }
        Strategy::Random { iterations, seed } => random_parallel(
            space, &make_eval, iterations, seed, threads, tracer, dispatch, events,
        ),
        Strategy::Mcts { iterations, config } => match backend {
            SearchBackend::Root => mcts_root_parallel(
                space, &make_eval, iterations, config, threads, tracer, dispatch, events, prune,
            ),
            SearchBackend::Auto | SearchBackend::Shared => mcts_shared_parallel(
                space, &make_eval, iterations, config, threads, tracer, dispatch, events, prune,
            ),
        },
    }
}

/// Quarantine-not-abort [`explore_parallel`] for chaos runs: every
/// evaluation is panic-isolated, failing traversals are collected in
/// [`ExploreOutput::failures`] instead of aborting the exploration, and
/// the surviving records keep the fault-free engine's determinism
/// guarantees (outcomes are a pure function of strategy, seed, and each
/// traversal — never of the thread count).
///
/// * `Exhaustive` and `Random` stream through the isolated worker pool
///   ([`dr_par::par_map_stream_isolated`]); telemetry rows count the
///   surviving measurements.
/// * `Mcts` relies on [`dr_mcts::MctsConfig::max_failures`] for in-tree
///   quarantine (set it before calling, e.g. to the iteration budget)
///   plus a worker-level `catch_unwind`; quarantined counts are summed
///   into [`ExploreOutput::quarantined`].
pub fn explore_parallel_resilient<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_resilient_traced(
        space,
        make_eval,
        strategy,
        threads,
        &Tracer::disabled(),
        None,
    )
}

/// [`explore_parallel_resilient`] with causal tracing (see
/// [`explore_parallel_traced`]). The isolated pool paths trace at the
/// evaluator level only (wrap the evaluator stack, e.g. in
/// `TracingEvaluator`); the MCTS paths additionally record sampled
/// per-iteration spans.
pub fn explore_parallel_resilient_traced<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_resilient_watched(space, make_eval, strategy, threads, tracer, dispatch, None)
}

/// [`explore_parallel_resilient_traced`] with a live event stream (see
/// [`explore_parallel_watched`]). The isolated pool paths emit no
/// worker events of their own — their observability lives at the
/// evaluator level — while the MCTS paths emit sampled `mcts-iter` and
/// (root-parallel) `worker-start`/`worker-end` events.
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel_resilient_watched<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    explore_parallel_resilient_watched_backend(
        space,
        make_eval,
        strategy,
        threads,
        tracer,
        dispatch,
        events,
        SearchBackend::Auto,
        None,
    )
}

/// [`explore_parallel_resilient_watched`] with an explicit MCTS
/// [`SearchBackend`]. The shared backend needs no extra resilience
/// scaffolding: its evaluation spawns already contain panics as
/// structured errors, and in-tree quarantine is governed by
/// [`dr_mcts::MctsConfig::max_failures`] exactly as on the fault-free
/// path.
#[allow(clippy::too_many_arguments)]
pub fn explore_parallel_resilient_watched_backend<E, F>(
    space: &DecisionSpace,
    make_eval: F,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
    backend: SearchBackend,
    prune: Option<PruneHook>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    let threads = threads.max(1);
    match strategy {
        Strategy::Exhaustive => {
            let traversals: Vec<Traversal> = space.enumerate().collect();
            let out = par_map_stream_isolated(
                traversals.iter(),
                threads,
                |_worker| make_eval(),
                |eval, _i, t: &Traversal| eval.evaluate(t, eval_seed(EXHAUSTIVE_MASTER_SEED, t)),
            );
            Ok(resilient_output(traversals, out, threads, true))
        }
        Strategy::Random { iterations, seed } => {
            let mut uniques: Vec<Traversal> = Vec::new();
            let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
            for iter in 0..iterations {
                let t = dr_mcts::random_rollout(space, seed, iter as u64);
                let hash = t.canonical_hash();
                let known = by_hash
                    .get(&hash)
                    .into_iter()
                    .flatten()
                    .any(|&u| uniques[u] == t);
                if !known {
                    by_hash.entry(hash).or_default().push(uniques.len());
                    uniques.push(t);
                }
            }
            let out = par_map_stream_isolated(
                uniques.iter(),
                threads,
                |_worker| make_eval(),
                |eval, _i, t: &Traversal| eval.evaluate(t, eval_seed(seed, t)),
            );
            Ok(resilient_output(uniques, out, threads, false))
        }
        Strategy::Mcts { iterations, config } => {
            if threads == 1 && backend != SearchBackend::Shared {
                let mut mcts = Mcts::new(space, make_eval(), config);
                attach_mcts_lane(&mut mcts, tracer, dispatch, 0);
                attach_mcts_events(&mut mcts, events);
                attach_mcts_prune(&mut mcts, prune.as_ref());
                mcts.run(iterations)?;
                let quarantined = mcts.failures() as u64;
                let tree = mcts.stats();
                let exhausted = mcts.is_exhausted();
                let pruned = mcts.pruned();
                let (records, telemetry, eval) = mcts.into_parts();
                let sim = eval.sim_stats().cloned();
                Ok(ExploreOutput {
                    records,
                    telemetry,
                    sim,
                    cache: CacheStats::default(),
                    threads: 1,
                    failures: Vec::new(),
                    quarantined,
                    pruned,
                    tree: Some(tree),
                    exhausted,
                })
            } else if backend == SearchBackend::Root {
                mcts_root_parallel(
                    space, &make_eval, iterations, config, threads, tracer, dispatch, events, prune,
                )
            } else {
                mcts_shared_parallel(
                    space, &make_eval, iterations, config, threads, tracer, dispatch, events, prune,
                )
            }
        }
    }
}

/// Folds the isolated pool's per-item outcomes (parallel to
/// `traversals`) into an [`ExploreOutput`]: survivors become records in
/// input order, quarantined items keep their traversal and error.
fn resilient_output<E: Evaluator>(
    traversals: Vec<Traversal>,
    out: dr_par::PoolOutcome<BenchResult, E, SimError>,
    threads: usize,
    exhausted: bool,
) -> ExploreOutput {
    let sim = merge_worker_stats(&out.states);
    let mut pairs: Vec<(Traversal, BenchResult)> = Vec::new();
    let mut failures: Vec<(Traversal, SimError)> = Vec::new();
    for (t, item) in traversals.into_iter().zip(out.items) {
        match item {
            ItemOutcome::Ok(result) => pairs.push((t, result)),
            ItemOutcome::Failed(e) => failures.push((t, e)),
            ItemOutcome::Panicked(detail) => {
                failures.push((t, SimError::Panicked { detail }));
            }
        }
    }
    let quarantined = failures.len() as u64;
    let (records, telemetry) = exhaustive_records(pairs);
    ExploreOutput {
        records,
        telemetry,
        sim,
        cache: CacheStats::default(),
        threads,
        failures,
        quarantined,
        pruned: 0,
        tree: None,
        exhausted,
    }
}

/// Builds the exhaustive strategy's records and telemetry from
/// `(traversal, result)` pairs in canonical enumeration order — shared
/// by the serial and parallel backends so their outputs are identical by
/// construction.
fn exhaustive_records(
    pairs: Vec<(Traversal, BenchResult)>,
) -> (Vec<ExploredRecord>, SearchTelemetry) {
    let mut records = Vec::with_capacity(pairs.len());
    let mut telemetry = SearchTelemetry::new();
    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    for (i, (t, result)) in pairs.into_iter().enumerate() {
        best = best.min(result.time());
        worst = worst.max(result.time());
        let rollout_len = t.steps.len();
        records.push(ExploredRecord {
            traversal: t,
            result,
        });
        telemetry.push(TelemetryRow {
            iteration: i as u64 + 1,
            unique_traversals: records.len(),
            best_time: best,
            worst_time: worst,
            tree_nodes: 0,
            max_depth: 0,
            rollout_len,
        });
    }
    (records, telemetry)
}

/// Merges the simulator statistics of per-worker evaluators in worker
/// order.
fn merge_worker_stats<E: Evaluator>(states: &[E]) -> Option<SimStats> {
    let mut total: Option<SimStats> = None;
    for e in states {
        if let Some(s) = e.sim_stats() {
            total.get_or_insert_with(SimStats::default).merge(s);
        }
    }
    total
}

/// Builds a pool observer from a live sink (`None` when there is no
/// sink or it is disabled, so the pool takes its unobserved path).
fn pool_observer(events: Option<&EventSink>) -> Option<SinkPoolObserver> {
    events
        .filter(|s| s.is_enabled())
        .map(|s| SinkPoolObserver { sink: s.clone() })
}

fn exhaustive_parallel<E, F>(
    space: &DecisionSpace,
    make_eval: &F,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    // The lazy enumeration is the shared work queue; each worker owns an
    // evaluator. Seeds depend only on the traversal, and the pool
    // restores input order, so output matches the serial path exactly.
    let observer = pool_observer(events);
    let (pairs, states) = par_map_stream_observed(
        space.enumerate(),
        threads,
        tracer,
        dispatch,
        observer.as_ref().map(|o| o as &dyn PoolObserver),
        |_worker| make_eval(),
        |eval, _i, t: Traversal| {
            let result = eval.evaluate(&t, eval_seed(EXHAUSTIVE_MASTER_SEED, &t))?;
            Ok((t, result))
        },
    )?;
    let sim = merge_worker_stats(&states);
    let (records, telemetry) = exhaustive_records(pairs);
    Ok(ExploreOutput {
        records,
        telemetry,
        sim,
        cache: CacheStats::default(),
        threads,
        failures: Vec::new(),
        quarantined: 0,
        pruned: 0,
        tree: None,
        exhausted: true,
    })
}

#[allow(clippy::too_many_arguments)]
fn random_parallel<E, F>(
    space: &DecisionSpace,
    make_eval: &F,
    iterations: usize,
    seed: u64,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    // Rollout generation is cheap and strictly deterministic, so it runs
    // serially; only the evaluations (the expensive part) fan out. Each
    // rollout is a pure function of (seed, iteration), so this produces
    // the very sequence the serial backend would.
    let mut uniques: Vec<Traversal> = Vec::new();
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    // For iteration i: Some(u) iff it first discovered unique index u.
    let mut first_discovery: Vec<Option<usize>> = Vec::with_capacity(iterations);
    let mut rollout_lens: Vec<usize> = Vec::with_capacity(iterations);
    for iter in 0..iterations {
        let t = dr_mcts::random_rollout(space, seed, iter as u64);
        rollout_lens.push(t.steps.len());
        let hash = t.canonical_hash();
        let existing = by_hash
            .get(&hash)
            .into_iter()
            .flatten()
            .copied()
            .find(|&u| uniques[u] == t);
        match existing {
            Some(_) => first_discovery.push(None),
            None => {
                let u = uniques.len();
                by_hash.entry(hash).or_default().push(u);
                uniques.push(t);
                first_discovery.push(Some(u));
            }
        }
    }
    let observer = pool_observer(events);
    let (pairs, states) = par_map_stream_observed(
        uniques.into_iter(),
        threads,
        tracer,
        dispatch,
        observer.as_ref().map(|o| o as &dyn PoolObserver),
        |_worker| make_eval(),
        |eval, _i, t: Traversal| {
            let result = eval.evaluate(&t, eval_seed(seed, &t))?;
            Ok((t, result))
        },
    )?;
    let sim = merge_worker_stats(&states);
    let records: Vec<ExploredRecord> = pairs
        .into_iter()
        .map(|(traversal, result)| ExploredRecord { traversal, result })
        .collect();
    let mut telemetry = SearchTelemetry::new();
    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    let mut count = 0usize;
    for iter in 0..iterations {
        if let Some(u) = first_discovery[iter] {
            count = u + 1;
            let time = records[u].result.time();
            best = best.min(time);
            worst = worst.max(time);
        }
        telemetry.push(TelemetryRow {
            iteration: iter as u64 + 1,
            unique_traversals: count,
            best_time: best,
            worst_time: worst,
            tree_nodes: 0,
            max_depth: 0,
            rollout_len: rollout_lens[iter],
        });
    }
    Ok(ExploreOutput {
        records,
        telemetry,
        sim,
        cache: CacheStats::default(),
        threads,
        failures: Vec::new(),
        quarantined: 0,
        pruned: 0,
        tree: None,
        exhausted: false,
    })
}

/// Pins evaluation seeds to `eval_seed(master, t)` regardless of the
/// seed the search supplies. Root-parallel workers search with different
/// seeds but must *measure* identically — whichever worker computes a
/// traversal first stores in the shared cache exactly the result every
/// other worker (and the serial run) would have produced, making the
/// cache race-free in values.
struct MasterSeeded<E> {
    inner: E,
    master: u64,
}

impl<E: Evaluator> Evaluator for MasterSeeded<E> {
    fn evaluate(&mut self, t: &Traversal, _seed: u64) -> Result<BenchResult, SimError> {
        self.inner.evaluate(t, eval_seed(self.master, t))
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        self.inner.sim_stats()
    }
}

type WorkerOutcome = Result<
    (
        Vec<ExploredRecord>,
        SearchTelemetry,
        Option<SimStats>,
        usize,
        TreeStats,
        bool,
        u64,
    ),
    SimError,
>;

#[allow(clippy::too_many_arguments)]
fn mcts_root_parallel<E, F>(
    space: &DecisionSpace,
    make_eval: &F,
    iterations: usize,
    config: MctsConfig,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
    prune: Option<PruneHook>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    let cache: StripedCache<Traversal, BenchResult> = StripedCache::new(64);
    let budgets = split_budget(iterations, threads);
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let cache = &cache;
        let prune = &prune;
        let handles: Vec<_> = budgets
            .iter()
            .enumerate()
            .map(|(worker, &budget)| {
                s.spawn(move || -> WorkerOutcome {
                    // Contain worker panics: a poisoned evaluation that
                    // slips past per-item isolation surfaces as a
                    // structured error instead of aborting the process.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> WorkerOutcome {
                            if let Some(sink) = events {
                                sink.emit(
                                    "worker-start",
                                    &[("worker", worker.into()), ("budget", budget.into())],
                                );
                            }
                            let worker_cfg = MctsConfig {
                                seed: config.seed ^ (worker as u64).wrapping_mul(WORKER_SEED_MIX),
                                ..config
                            };
                            let eval = CachingEvaluator::new(
                                MasterSeeded {
                                    inner: make_eval(),
                                    master: config.seed,
                                },
                                cache,
                            );
                            let mut mcts = Mcts::new(space, eval, worker_cfg);
                            attach_mcts_lane(&mut mcts, tracer, dispatch, worker);
                            attach_mcts_events(&mut mcts, events);
                            attach_mcts_prune(&mut mcts, prune.as_ref());
                            mcts.run(budget)?;
                            let failures = mcts.failures();
                            let tree = mcts.stats();
                            let exhausted = mcts.is_exhausted();
                            let pruned = mcts.pruned();
                            let (records, telemetry, eval) = mcts.into_parts();
                            let sim = eval.sim_stats().cloned();
                            if let Some(sink) = events {
                                sink.emit(
                                    "worker-end",
                                    &[("worker", worker.into()), ("items", records.len().into())],
                                );
                            }
                            Ok((records, telemetry, sim, failures, tree, exhausted, pruned))
                        },
                    ));
                    run.unwrap_or_else(|payload| {
                        let detail = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(SimError::Panicked { detail })
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("MCTS worker panicked"))
            .collect()
    });

    // Merge worker-major: renumber iterations globally and deduplicate
    // records across workers. Worker trajectories are independent, so
    // tree_nodes/max_depth/rollout_len stay worker-local in each row;
    // unique/best/worst are recomputed globally.
    let mut records: Vec<ExploredRecord> = Vec::new();
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut telemetry = SearchTelemetry::new();
    let mut sim: Option<SimStats> = None;
    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    let mut iteration = 0u64;
    let insert = |records: &mut Vec<ExploredRecord>,
                  by_hash: &mut HashMap<u64, Vec<usize>>,
                  best: &mut f64,
                  worst: &mut f64,
                  rec: ExploredRecord| {
        let hash = rec.traversal.canonical_hash();
        let dup = by_hash
            .get(&hash)
            .into_iter()
            .flatten()
            .copied()
            .any(|i| records[i].traversal == rec.traversal);
        if !dup {
            *best = best.min(rec.result.time());
            *worst = worst.max(rec.result.time());
            by_hash.entry(hash).or_default().push(records.len());
            records.push(rec);
        }
    };
    let mut quarantined = 0u64;
    let mut tree = TreeStats {
        nodes: 0,
        max_depth: 0,
        fully_explored: 0,
        rollouts: 0,
        t_min: f64::INFINITY,
        t_max: f64::NEG_INFINITY,
    };
    let mut exhausted = false;
    let mut pruned = 0u64;
    for outcome in outcomes {
        let (wrecords, wtelemetry, wsim, wfailures, wtree, wexhausted, wpruned) = outcome?;
        quarantined += wfailures as u64;
        pruned += wpruned;
        tree.nodes += wtree.nodes;
        tree.max_depth = tree.max_depth.max(wtree.max_depth);
        tree.fully_explored += wtree.fully_explored;
        tree.rollouts += wtree.rollouts;
        tree.t_min = tree.t_min.min(wtree.t_min);
        tree.t_max = tree.t_max.max(wtree.t_max);
        exhausted |= wexhausted;
        let mut recs = wrecords.into_iter();
        let mut local_count = 0usize;
        for row in wtelemetry.rows() {
            iteration += 1;
            if row.unique_traversals > local_count {
                local_count = row.unique_traversals;
                let rec = recs.next().expect("unique count tracks records");
                insert(&mut records, &mut by_hash, &mut best, &mut worst, rec);
            }
            telemetry.push(TelemetryRow {
                iteration,
                unique_traversals: records.len(),
                best_time: best,
                worst_time: worst,
                tree_nodes: row.tree_nodes,
                max_depth: row.max_depth,
                rollout_len: row.rollout_len,
            });
        }
        // Records not claimed by a telemetry increment (none in
        // practice) are still kept rather than silently dropped.
        for rec in recs {
            insert(&mut records, &mut by_hash, &mut best, &mut worst, rec);
        }
        if let Some(ws) = wsim {
            sim.get_or_insert_with(SimStats::default).merge(&ws);
        }
    }
    Ok(ExploreOutput {
        records,
        telemetry,
        sim,
        cache: cache.stats(),
        threads,
        failures: Vec::new(),
        quarantined,
        pruned,
        tree: Some(tree),
        exhausted,
    })
}

/// Shared-tree parallel MCTS: one arena-backed tree on the coordinating
/// thread, batch assembly under virtual loss, and a fixed pool of
/// `threads` persistent evaluators that measure each batch's pending
/// traversals in parallel (entry `i` of a batch always runs on
/// evaluator slot `i`, so per-evaluator memo state evolves
/// deterministically).
///
/// Determinism: assembly runs entirely on the coordinator (the worker
/// threads never touch the tree), and every evaluation result is a pure
/// function of its traversal, so the whole run — records, telemetry,
/// tree — is a pure function of `(strategy, config, threads)`. Because
/// batch width follows the thread count, different thread counts visit
/// the space in different orders; records are therefore returned sorted
/// by [`Traversal::canonical_hash`], which makes the record *list* (not
/// just the set) thread-count-invariant once the budget exhausts the
/// space.
#[allow(clippy::too_many_arguments)]
fn mcts_shared_parallel<E, F>(
    space: &DecisionSpace,
    make_eval: &F,
    iterations: usize,
    config: MctsConfig,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    events: Option<&EventSink>,
    prune: Option<PruneHook>,
) -> Result<ExploreOutput, SimError>
where
    E: Evaluator + Send,
    F: Fn() -> E + Sync,
{
    let mut evals: Vec<E> = (0..threads).map(|_| make_eval()).collect();
    let mut items = vec![0usize; threads];
    if let Some(sink) = events.filter(|s| s.is_enabled()) {
        for worker in 0..threads {
            sink.emit("worker-start", &[("worker", worker.into())]);
        }
    }
    let mut mcts = SharedMcts::new(space, config);
    if let Some(hook) = prune {
        mcts.set_prune(hook);
    }
    if tracer.is_enabled() {
        let mut lane = tracer.lane("mcts-shared");
        if let Some(d) = dispatch {
            lane.enter("mcts-dispatch");
            lane.follows_from(d);
            lane.exit();
        }
        mcts.set_trace(lane, mcts_trace_every());
    }
    if let Some(sink) = events.filter(|s| s.is_enabled()) {
        mcts.set_events(sink.clone(), events_rate());
    }

    let mut remaining = iterations as u64;
    while remaining > 0 && !mcts.is_exhausted() {
        let batch = mcts.select_batch(threads, remaining);
        remaining = remaining.saturating_sub(batch.iterations as u64);
        if batch.pending.is_empty() {
            if batch.iterations == 0 {
                break; // defensive: no progress possible
            }
            continue; // assembly resolved everything inline
        }
        let results: Vec<Result<BenchResult, SimError>> = if threads == 1 {
            let pe = &batch.pending[0];
            items[0] += 1;
            vec![contained_eval(&mut evals[0], &pe.traversal, pe.eval_seed)]
        } else {
            for n in items.iter_mut().take(batch.pending.len()) {
                *n += 1;
            }
            std::thread::scope(|s| {
                let handles: Vec<_> = batch
                    .pending
                    .iter()
                    .zip(evals.iter_mut())
                    .map(|(pe, eval)| {
                        s.spawn(move || contained_eval(eval, &pe.traversal, pe.eval_seed))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shared MCTS evaluation thread panicked"))
                    .collect()
            })
        };
        mcts.commit(batch, results)?;
    }

    if let Some(sink) = events.filter(|s| s.is_enabled()) {
        for (worker, &n) in items.iter().enumerate() {
            sink.emit(
                "worker-end",
                &[("worker", worker.into()), ("items", n.into())],
            );
        }
    }

    let sim = merge_worker_stats(&evals);
    let cache = CacheStats {
        hits: mcts.repeats(),
        misses: mcts.records().len() as u64,
    };
    let quarantined = mcts.failures() as u64;
    let pruned = mcts.pruned();
    let tree = mcts.stats();
    let exhausted = mcts.is_exhausted();
    let (mut records, raw_telemetry) = mcts.into_parts();
    records.sort_by_key(|r| r.traversal.canonical_hash());
    // Commit-time rows carry assembly iteration numbers, which are not
    // monotone across batches; renumber in push (commit) order so the
    // merged telemetry reads like the serial engine's.
    let mut telemetry = SearchTelemetry::new();
    for (i, row) in raw_telemetry.rows().iter().enumerate() {
        telemetry.push(TelemetryRow {
            iteration: i as u64 + 1,
            ..*row
        });
    }
    Ok(ExploreOutput {
        records,
        telemetry,
        sim,
        cache,
        threads,
        failures: Vec::new(),
        quarantined,
        pruned,
        tree: Some(tree),
        exhausted,
    })
}

/// Runs one evaluation with panic containment: a poisoned evaluation
/// surfaces as a structured error the search can quarantine instead of
/// tearing down the batch.
fn contained_eval<E: Evaluator>(
    eval: &mut E,
    t: &Traversal,
    seed: u64,
) -> Result<BenchResult, SimError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval.evaluate(t, seed)))
        .unwrap_or_else(|payload| {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SimError::Panicked { detail })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_mcts::SimEvaluator;
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        (space, w, Platform::perlmutter_like().noiseless())
    }

    #[test]
    fn exhaustive_covers_the_whole_space() {
        let (space, w, platform) = setup();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let records = explore(&space, eval, Strategy::Exhaustive).unwrap();
        assert_eq!(records.len() as u128, space.count_traversals());
    }

    #[test]
    fn mcts_strategy_respects_budget() {
        let (space, w, platform) = setup();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let records = explore(
            &space,
            eval,
            Strategy::Mcts {
                iterations: 5,
                config: MctsConfig::default(),
            },
        )
        .unwrap();
        assert!(!records.is_empty() && records.len() <= 5);
    }

    #[test]
    fn random_strategy_returns_unique_records() {
        let (space, w, platform) = setup();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let records = explore(
            &space,
            eval,
            Strategy::Random {
                iterations: 30,
                seed: 1,
            },
        )
        .unwrap();
        let set: std::collections::HashSet<_> = records.iter().map(|r| &r.traversal).collect();
        assert_eq!(set.len(), records.len());
    }

    /// Runs `explore_parallel` over the shared setup with a fresh
    /// SimEvaluator per worker.
    fn run_parallel(strategy: Strategy, threads: usize) -> ExploreOutput {
        let (space, w, platform) = setup();
        explore_parallel(
            &space,
            || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            strategy,
            threads,
        )
        .unwrap()
    }

    fn record_set(records: &[ExploredRecord]) -> std::collections::HashSet<(Traversal, u64)> {
        records
            .iter()
            .map(|r| (r.traversal.clone(), r.result.time().to_bits()))
            .collect()
    }

    #[test]
    fn parallel_exhaustive_matches_serial_bit_for_bit() {
        let serial = run_parallel(Strategy::Exhaustive, 1);
        for threads in [2, 3, 8] {
            let par = run_parallel(Strategy::Exhaustive, threads);
            assert_eq!(par.threads, threads);
            assert_eq!(par.records.len(), serial.records.len());
            // Same records in the same (canonical) order, same times.
            for (a, b) in par.records.iter().zip(&serial.records) {
                assert_eq!(a.traversal, b.traversal);
                assert_eq!(a.result, b.result);
            }
            assert_eq!(par.telemetry.to_csv(), serial.telemetry.to_csv());
            let (ps, ss) = (par.sim.unwrap(), serial.sim.clone().unwrap());
            assert_eq!(ps.runs, ss.runs);
            assert_eq!(ps.instructions, ss.instructions);
        }
    }

    #[test]
    fn parallel_random_matches_serial_bit_for_bit() {
        let strategy = Strategy::Random {
            iterations: 40,
            seed: 9,
        };
        let serial = run_parallel(strategy, 1);
        for threads in [2, 4] {
            let par = run_parallel(strategy, threads);
            for (a, b) in par.records.iter().zip(&serial.records) {
                assert_eq!(a.traversal, b.traversal);
                assert_eq!(a.result, b.result);
            }
            assert_eq!(par.records.len(), serial.records.len());
            assert_eq!(par.telemetry.to_csv(), serial.telemetry.to_csv());
        }
    }

    /// Like [`run_parallel`] with an explicitly pinned MCTS backend.
    fn run_backend(strategy: Strategy, threads: usize, backend: SearchBackend) -> ExploreOutput {
        let (space, w, platform) = setup();
        explore_parallel_backend(
            &space,
            || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            strategy,
            threads,
            backend,
        )
        .unwrap()
    }

    #[test]
    fn root_parallel_mcts_exhausts_to_the_serial_record_set() {
        // A budget far above the space size exhausts every worker's
        // tree, so the merged record set must be thread-count-invariant
        // and identical to the serial search's. (Backend pinned to the
        // legacy root-parallel engine; the default is the shared tree.)
        let strategy = Strategy::Mcts {
            iterations: 200,
            config: MctsConfig::default(),
        };
        let serial = run_backend(strategy, 1, SearchBackend::Root);
        let serial_set = record_set(&serial.records);
        assert!(!serial_set.is_empty());
        for threads in [2, 4] {
            let par = run_backend(strategy, threads, SearchBackend::Root);
            assert_eq!(record_set(&par.records), serial_set, "threads={threads}");
            // Re-running is deterministic in full.
            let again = run_backend(strategy, threads, SearchBackend::Root);
            assert_eq!(record_set(&again.records), record_set(&par.records));
            // Workers overlap on a tiny space, so the shared cache
            // must have absorbed re-simulations.
            assert!(par.cache.hits > 0, "expected cache hits: {:?}", par.cache);
            assert_eq!(par.cache.misses as usize, par.records.len());
        }
    }

    #[test]
    fn shared_tree_mcts_is_thread_count_invariant_at_exhaustion() {
        // The shared backend sorts records canonically, so at exhaustion
        // not just the record set but the record *list* must be
        // identical across thread counts — and across the Auto/Shared
        // spellings — and must equal the serial engine's record set.
        let strategy = Strategy::Mcts {
            iterations: 200,
            config: MctsConfig::default(),
        };
        let serial = run_backend(strategy, 1, SearchBackend::Auto);
        assert!(serial.exhausted, "budget must exhaust the test space");
        let serial_set = record_set(&serial.records);
        let shared1 = run_backend(strategy, 1, SearchBackend::Shared);
        assert!(shared1.exhausted);
        assert_eq!(record_set(&shared1.records), serial_set);
        for threads in [2, 4] {
            let par = run_backend(strategy, threads, SearchBackend::Shared);
            assert!(par.exhausted, "threads={threads}");
            assert_eq!(par.records.len(), shared1.records.len());
            for (a, b) in par.records.iter().zip(&shared1.records) {
                assert_eq!(a.traversal, b.traversal, "threads={threads}");
                assert_eq!(a.result, b.result, "threads={threads}");
            }
            let auto = run_backend(strategy, threads, SearchBackend::Auto);
            assert_eq!(record_set(&auto.records), serial_set);
            // Cache counters mirror the tree's repeat accounting.
            assert_eq!(par.cache.misses as usize, par.records.len());
            assert!(par.tree.is_some());
            let (ps, ss) = (par.sim.clone().unwrap(), serial.sim.clone().unwrap());
            assert_eq!(ps.runs, ss.runs, "each traversal simulated once");
        }
    }

    #[test]
    fn search_backend_resolves_names() {
        assert_eq!(SearchBackend::default(), SearchBackend::Auto);
        assert_eq!(SearchBackend::Auto.name(), "auto");
        assert_eq!(SearchBackend::Shared.name(), "shared");
        assert_eq!(SearchBackend::Root.name(), "root");
    }

    /// An evaluator that deterministically fails traversals by hash
    /// residue — and, when `panics` is set, panics on one residue to
    /// exercise containment (only valid under the isolated pool; the
    /// MCTS path expects its evaluator to return errors, as the real
    /// `ResilientEvaluator` does after catching panics itself).
    fn chaotic_eval<'a>(
        space: &'a DecisionSpace,
        w: &'a TableWorkload,
        platform: &'a Platform,
        panics: bool,
    ) -> impl FnMut(&Traversal, u64) -> Result<dr_sim::BenchResult, SimError> + 'a {
        let mut inner = SimEvaluator::new(space, w, platform, BenchConfig::quick());
        move |t: &Traversal, seed: u64| match t.canonical_hash() % 4 {
            0 | 2 => Err(SimError::Panicked {
                detail: "injected failure".into(),
            }),
            1 if panics => panic!("injected panic"),
            1 => Err(SimError::Panicked {
                detail: "injected failure".into(),
            }),
            _ => Evaluator::evaluate(&mut inner, t, seed),
        }
    }

    #[test]
    fn resilient_exhaustive_quarantines_and_keeps_the_rest() {
        let (space, w, platform) = setup();
        let total = space.count_traversals() as usize;
        let run = |threads| {
            explore_parallel_resilient(
                &space,
                || chaotic_eval(&space, &w, &platform, true),
                Strategy::Exhaustive,
                threads,
            )
            .unwrap()
        };
        let serial = run(1);
        assert_eq!(
            serial.records.len() + serial.failures.len(),
            total,
            "every traversal is either measured or quarantined"
        );
        assert!(!serial.failures.is_empty(), "chaos must bite this space");
        assert!(!serial.records.is_empty(), "survivors must remain");
        assert_eq!(serial.quarantined as usize, serial.failures.len());
        // Panics were contained as structured errors.
        assert!(serial
            .failures
            .iter()
            .all(|(_, e)| matches!(e, SimError::Panicked { .. })));
        for threads in [2, 4] {
            let par = run(threads);
            assert_eq!(par.records.len(), serial.records.len(), "threads={threads}");
            for (a, b) in par.records.iter().zip(&serial.records) {
                assert_eq!(a.traversal, b.traversal);
                assert_eq!(a.result, b.result);
            }
            assert_eq!(
                par.failures.iter().map(|(t, _)| t).collect::<Vec<_>>(),
                serial.failures.iter().map(|(t, _)| t).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn resilient_random_matches_the_plain_engine_when_clean() {
        let (space, w, platform) = setup();
        let strategy = Strategy::Random {
            iterations: 30,
            seed: 5,
        };
        let plain = explore_parallel(
            &space,
            || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            strategy,
            2,
        )
        .unwrap();
        let resilient = explore_parallel_resilient(
            &space,
            || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            strategy,
            2,
        )
        .unwrap();
        assert_eq!(resilient.records.len(), plain.records.len());
        for (a, b) in resilient.records.iter().zip(&plain.records) {
            assert_eq!(a.traversal, b.traversal);
            assert_eq!(a.result, b.result);
        }
        assert!(resilient.failures.is_empty());
        assert_eq!(resilient.quarantined, 0);
    }

    #[test]
    fn resilient_mcts_quarantines_in_tree() {
        let (space, w, platform) = setup();
        let total = space.count_traversals() as usize;
        let strategy = Strategy::Mcts {
            iterations: 400,
            config: MctsConfig {
                max_failures: total,
                ..MctsConfig::default()
            },
        };
        let out = explore_parallel_resilient(
            &space,
            || chaotic_eval(&space, &w, &platform, false),
            strategy,
            1,
        )
        .unwrap();
        assert!(out.quarantined > 0, "chaos must bite");
        assert!(!out.records.is_empty());
        assert_eq!(out.records.len() + out.quarantined as usize, total);
    }

    #[test]
    fn parallel_mcts_telemetry_is_renumbered_and_monotone() {
        let strategy = Strategy::Mcts {
            iterations: 60,
            config: MctsConfig::default(),
        };
        let par = run_parallel(strategy, 3);
        let rows = par.telemetry.rows();
        assert!(!rows.is_empty());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.iteration, i as u64 + 1);
        }
        for w in rows.windows(2) {
            assert!(w[1].unique_traversals >= w[0].unique_traversals);
            assert!(w[1].best_time <= w[0].best_time);
        }
        assert_eq!(
            rows.last().unwrap().unique_traversals,
            par.records.len(),
            "final row counts all merged records"
        );
    }
}
