//! Exploration strategies: how the `(sequence, time)` sample set is
//! collected before rule mining.

use dr_dag::{DecisionSpace, Traversal};
use dr_mcts::{Evaluator, ExploredRecord, Mcts, MctsConfig, SearchTelemetry, TelemetryRow};
use dr_sim::{SimError, SimStats};

/// How to collect the sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Benchmark every traversal of the space (feasible only for small
    /// DAGs; this is the paper's canonical 2036-implementation dataset).
    Exhaustive,
    /// Monte-Carlo tree search with the given iteration budget
    /// (paper Section III-C).
    Mcts {
        /// Number of search iterations (rollouts).
        iterations: usize,
        /// Search hyperparameters.
        config: MctsConfig,
    },
    /// Uniform random sampling with the given rollout budget (the
    /// baseline the paper's future work calls for).
    Random {
        /// Number of rollouts.
        iterations: usize,
        /// Sampling seed.
        seed: u64,
    },
}

impl Strategy {
    /// The strategy's short name, used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Mcts { .. } => "mcts",
            Strategy::Random { .. } => "random",
        }
    }
}

/// Collects explored records under a strategy.
pub fn explore<E: Evaluator>(
    space: &DecisionSpace,
    eval: E,
    strategy: Strategy,
) -> Result<Vec<ExploredRecord>, SimError> {
    explore_instrumented(space, eval, strategy).map(|(records, _, _)| records)
}

/// Like [`explore`], additionally returning the per-iteration
/// [`SearchTelemetry`] and the evaluator's accumulated [`SimStats`]
/// (`None` for evaluators that do not run the simulator).
pub fn explore_instrumented<E: Evaluator>(
    space: &DecisionSpace,
    mut eval: E,
    strategy: Strategy,
) -> Result<(Vec<ExploredRecord>, SearchTelemetry, Option<SimStats>), SimError> {
    match strategy {
        Strategy::Exhaustive => {
            let mut records = Vec::new();
            let mut telemetry = SearchTelemetry::new();
            let mut best = f64::INFINITY;
            let mut worst = f64::NEG_INFINITY;
            for (i, t) in space.enumerate().into_iter().enumerate() {
                let seed = 0xE0E0_0000u64 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let result = eval.evaluate(&t, seed)?;
                best = best.min(result.time());
                worst = worst.max(result.time());
                let rollout_len = t.steps.len();
                records.push(ExploredRecord {
                    traversal: t,
                    result,
                });
                telemetry.push(TelemetryRow {
                    iteration: i as u64 + 1,
                    unique_traversals: records.len(),
                    best_time: best,
                    worst_time: worst,
                    tree_nodes: 0,
                    max_depth: 0,
                    rollout_len,
                });
            }
            let stats = eval.sim_stats().cloned();
            Ok((records, telemetry, stats))
        }
        Strategy::Mcts { iterations, config } => {
            let mut mcts = Mcts::new(space, eval, config);
            mcts.run(iterations)?;
            let (records, telemetry, eval) = mcts.into_parts();
            Ok((records, telemetry, eval.sim_stats().cloned()))
        }
        Strategy::Random { iterations, seed } => {
            let (records, telemetry) = dr_mcts::random_search_telemetry(
                space,
                |t: &Traversal, s: u64| eval.evaluate(t, s),
                iterations,
                seed,
            )?;
            let stats = eval.sim_stats().cloned();
            Ok((records, telemetry, stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_mcts::SimEvaluator;
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        (space, w, Platform::perlmutter_like().noiseless())
    }

    #[test]
    fn exhaustive_covers_the_whole_space() {
        let (space, w, platform) = setup();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let records = explore(&space, eval, Strategy::Exhaustive).unwrap();
        assert_eq!(records.len() as u128, space.count_traversals());
    }

    #[test]
    fn mcts_strategy_respects_budget() {
        let (space, w, platform) = setup();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let records = explore(
            &space,
            eval,
            Strategy::Mcts {
                iterations: 5,
                config: MctsConfig::default(),
            },
        )
        .unwrap();
        assert!(!records.is_empty() && records.len() <= 5);
    }

    #[test]
    fn random_strategy_returns_unique_records() {
        let (space, w, platform) = setup();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let records = explore(
            &space,
            eval,
            Strategy::Random {
                iterations: 30,
                seed: 1,
            },
        )
        .unwrap();
        let set: std::collections::HashSet<_> = records.iter().map(|r| &r.traversal).collect();
        assert_eq!(set.len(), records.len());
    }
}
