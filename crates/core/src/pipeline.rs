//! The end-to-end design-rule pipeline (paper Fig. 2): explore → label →
//! featurize → train → extract rules.

use crate::explore::{explore, Strategy};
use dr_dag::{DecisionSpace, Traversal};
use dr_mcts::{ExploredRecord, SimEvaluator};
use dr_ml::{
    algorithm1, extract_rulesets, featurize, label_times, FeatureSet, HyperSearch, LabelingConfig,
    Labeling, RuleSet, TrainConfig,
};
use dr_sim::{BenchConfig, Platform, SimError, Workload};

/// Pipeline parameters (defaults mirror the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub struct PipelineConfig {
    /// Class-labeling parameters (Section IV-A).
    pub labeling: LabelingConfig,
    /// Decision-tree parameters (Table IV); `max_leaf_nodes`/`max_depth`
    /// are chosen by Algorithm 1.
    pub train: TrainConfig,
    /// Measurement protocol (Section III-C-3).
    pub bench: BenchConfig,
}


impl PipelineConfig {
    /// Cheap settings for tests and examples.
    pub fn quick() -> Self {
        PipelineConfig { bench: BenchConfig::quick(), ..Default::default() }
    }
}

/// Everything the pipeline produces for one exploration run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The explored implementations with their measurements.
    pub records: Vec<ExploredRecord>,
    /// Performance-class labeling of the records.
    pub labeling: Labeling,
    /// The pruned feature matrix of the records.
    pub features: FeatureSet,
    /// Algorithm 1's hyperparameter search (the tree is
    /// `search.tree`).
    pub search: HyperSearch,
    /// One ruleset per decision-tree leaf.
    pub rulesets: Vec<RuleSet>,
}

impl PipelineResult {
    /// Predicts the performance class of an arbitrary traversal of the
    /// same space using the learned tree.
    pub fn classify(&self, space: &DecisionSpace, t: &Traversal) -> usize {
        let x = self.features.vector_of(space, t);
        self.search.tree.predict(&x)
    }

    /// The scalar time of each record (median measurement), parallel to
    /// `records`.
    pub fn times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.result.time()).collect()
    }
}

/// Runs the full pipeline over a decision space and workload.
pub fn run_pipeline<W: Workload>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, SimError> {
    let eval = SimEvaluator::new(space, workload, platform, cfg.bench);
    let records = explore(space, eval, strategy)?;
    Ok(mine_rules(space, records, cfg))
}

/// The mining half of the pipeline, reusable when records were collected
/// elsewhere (e.g. shared between experiments).
pub fn mine_rules(
    space: &DecisionSpace,
    records: Vec<ExploredRecord>,
    cfg: &PipelineConfig,
) -> PipelineResult {
    assert!(!records.is_empty(), "cannot mine rules from zero records");
    let times: Vec<f64> = records.iter().map(|r| r.result.time()).collect();
    let labeling = label_times(&times, &cfg.labeling);
    let traversals: Vec<&Traversal> = records.iter().map(|r| &r.traversal).collect();
    let features = featurize(space, &traversals);
    let search = algorithm1(&features.matrix, &labeling.labels, labeling.num_classes, &cfg.train);
    let rulesets = extract_rulesets(&search.tree, &features);
    PipelineResult { records, labeling, features, search, rulesets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::TableWorkload;

    /// A space with a strong, learnable performance cliff: two big
    /// kernels either overlap (different streams) or serialize.
    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 5e-4).cost_all("b", 5e-4).cost_all("c", 1e-5);
        let platform = dr_sim::Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        (space, w, platform)
    }

    #[test]
    fn exhaustive_pipeline_learns_the_stream_rule() {
        let (space, w, platform) = setup();
        let result =
            run_pipeline(&space, &w, &platform, Strategy::Exhaustive, &PipelineConfig::quick())
                .unwrap();
        // Two regimes: overlapped (~0.5 ms) vs serialized (~1 ms).
        assert_eq!(result.labeling.num_classes, 2, "{:?}", result.labeling.boundaries);
        assert_eq!(result.search.error, 0.0, "cliff must be perfectly learnable");
        // The discriminating feature is the stream assignment.
        let stream_rules = result
            .rulesets
            .iter()
            .flat_map(|rs| rs.rules.iter())
            .filter(|r| matches!(r.kind, dr_ml::FeatureKind::SameStream(_, _)))
            .count();
        assert!(stream_rules > 0, "rules: {:?}", result.rulesets);
    }

    #[test]
    fn classify_agrees_with_training_labels() {
        let (space, w, platform) = setup();
        let result =
            run_pipeline(&space, &w, &platform, Strategy::Exhaustive, &PipelineConfig::quick())
                .unwrap();
        for (rec, &label) in result.records.iter().zip(&result.labeling.labels) {
            assert_eq!(result.classify(&space, &rec.traversal), label);
        }
    }

    #[test]
    fn mcts_pipeline_runs_on_a_budget() {
        let (space, w, platform) = setup();
        let strategy = Strategy::Mcts {
            iterations: 8,
            config: dr_mcts::MctsConfig::default(),
        };
        let result =
            run_pipeline(&space, &w, &platform, strategy, &PipelineConfig::quick()).unwrap();
        assert!(!result.records.is_empty());
        assert!(!result.rulesets.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero records")]
    fn mining_zero_records_panics() {
        let (space, _, _) = setup();
        mine_rules(&space, Vec::new(), &PipelineConfig::quick());
    }
}
