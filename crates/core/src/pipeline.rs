//! The end-to-end design-rule pipeline (paper Fig. 2): explore → label →
//! featurize → train → extract rules.

use crate::explore::{
    events_rate, explore_parallel_resilient_watched_backend, explore_parallel_watched_backend,
    SearchBackend, Strategy,
};
use crate::lintstage::{lint_space_watched, topology_from_workload, LintTotals, LintingEvaluator};
use crate::report::{RunReport, SearchSummary};
use crate::resilient::{ResilienceTotals, ResilientEvaluator};
use crate::storestage::StoredEvaluator;
use crate::tracestage::TracingEvaluator;
use crate::watch::{EvalWatch, WatchedEvaluator};
use dr_dag::{DecisionSpace, Traversal};
use dr_fault::FaultConfig;
use dr_mcts::{ExploredRecord, PruneHook, SearchTelemetry, SimEvaluator};
use dr_ml::{
    algorithm1, extract_rulesets, featurize, label_times, FeatureSet, HyperSearch, Labeling,
    LabelingConfig, RuleSet, TrainConfig,
};
use dr_obs::events::{EventSink, Field};
use dr_obs::{Phases, Stopwatch};
use dr_par::{resolve_threads, CacheStats};
use dr_sim::{BenchConfig, Platform, SimError, Workload};
use dr_trace::{Lane, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pipeline parameters (defaults mirror the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineConfig {
    /// Class-labeling parameters (Section IV-A).
    pub labeling: LabelingConfig,
    /// Decision-tree parameters (Table IV); `max_leaf_nodes`/`max_depth`
    /// are chosen by Algorithm 1.
    pub train: TrainConfig,
    /// Measurement protocol (Section III-C-3).
    pub bench: BenchConfig,
    /// Exploration worker threads. `0` (the default) resolves via the
    /// `DR_THREADS` environment variable, falling back to serial.
    pub threads: usize,
    /// Statically lint every evaluated schedule before simulating it,
    /// surfacing counters in the run report. Findings never fail an
    /// evaluation; off by default.
    pub lint: bool,
    /// Deterministic fault injection (chaos mode). Inactive (clean) by
    /// default; when inactive, the `DR_FAULTS` environment variable is
    /// consulted (`clean`/`light`/`heavy`/`drops` or `key=value`
    /// overrides). An active config routes exploration through the
    /// resilient engine: retry-with-reseed evaluation under a watchdog
    /// budget, panic isolation, quarantine instead of abort, and robust
    /// (MAD-screened) labeling.
    pub faults: FaultConfig,
    /// Which parallel engine backs MCTS exploration. The default
    /// ([`SearchBackend::Auto`]) keeps the serial tree at one thread and
    /// uses the shared tree above; the CLI resolves `DR_SEARCH` into
    /// this field.
    pub search: SearchBackend,
}

impl PipelineConfig {
    /// Cheap settings for tests and examples.
    pub fn quick() -> Self {
        PipelineConfig {
            bench: BenchConfig::quick(),
            ..Default::default()
        }
    }
}

/// Everything the pipeline produces for one exploration run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The explored implementations with their measurements.
    pub records: Vec<ExploredRecord>,
    /// Performance-class labeling of the records.
    pub labeling: Labeling,
    /// The pruned feature matrix of the records.
    pub features: FeatureSet,
    /// Algorithm 1's hyperparameter search (the tree is
    /// `search.tree`).
    pub search: HyperSearch,
    /// One ruleset per decision-tree leaf.
    pub rulesets: Vec<RuleSet>,
}

impl PipelineResult {
    /// Predicts the performance class of an arbitrary traversal of the
    /// same space using the learned tree.
    pub fn classify(&self, space: &DecisionSpace, t: &Traversal) -> usize {
        let x = self.features.vector_of(space, t);
        self.search.tree.predict(&x)
    }

    /// The scalar time of each record (median measurement), parallel to
    /// `records`.
    pub fn times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.result.time()).collect()
    }
}

/// Runs the full pipeline over a decision space and workload.
pub fn run_pipeline<W: Workload + Sync>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, SimError> {
    run_pipeline_instrumented(space, workload, platform, strategy, cfg).map(|r| r.result)
}

/// Result plus observability artifacts of one instrumented pipeline run.
#[derive(Debug, Clone)]
pub struct InstrumentedRun {
    /// The pipeline's mined output.
    pub result: PipelineResult,
    /// Aggregated run report (phase timings, sim stats, search and
    /// mining summaries).
    pub report: RunReport,
    /// Per-iteration search telemetry (one row per exploration
    /// iteration).
    pub telemetry: SearchTelemetry,
    /// Hit/miss counters of the shared evaluation cache (all zero for
    /// serial runs and strategies that never re-visit a traversal).
    pub cache: CacheStats,
    /// Number of exploration worker threads actually used.
    pub threads: usize,
}

/// Like [`run_pipeline`], additionally producing a [`RunReport`] and the
/// per-iteration [`SearchTelemetry`]. Exploration uses
/// [`PipelineConfig::threads`] workers (resolved through `DR_THREADS`
/// when zero); mining is always serial.
pub fn run_pipeline_instrumented<W: Workload + Sync>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
) -> Result<InstrumentedRun, SimError> {
    run_pipeline_traced(
        space,
        workload,
        platform,
        strategy,
        cfg,
        &Tracer::disabled(),
    )
}

/// [`run_pipeline_instrumented`] with causal span tracing: a root
/// `pipeline` span covers the run, each phase (`explore`, `label`,
/// `featurize`, `train`, `rules`) becomes a child span, every worker's
/// evaluator stack is wrapped in a [`TracingEvaluator`] recording one
/// `evaluate` span per benchmark call, and the exploration backends add
/// worker/chunk/iteration spans linked to the explore span via
/// `follows_from` edges. With a disabled tracer this is exactly
/// [`run_pipeline_instrumented`]; tracing never changes the mined
/// result.
pub fn run_pipeline_traced<W: Workload + Sync>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
    tracer: &Tracer,
) -> Result<InstrumentedRun, SimError> {
    run_pipeline_watched(space, workload, platform, strategy, cfg, tracer, None)
}

/// Builds the optional MCTS static-prune hook from `DR_LINT_PRUNE`:
/// when the variable is set to anything but `0`/`off`/`false`, a
/// [`dr_lint::PrefixDeadlockOracle`] condemns search prefixes whose
/// every completion provably deadlocks, and MCTS retires those subtrees
/// before a single rollout enters them. The oracle is sound, so pruning
/// never removes a deadlock-free implementation from the record set; it
/// only stops the search from measuring implementations lint would
/// reject anyway.
fn lint_prune_hook<W: Workload>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
) -> Option<PruneHook> {
    let v = std::env::var("DR_LINT_PRUNE").ok()?;
    if matches!(v.trim(), "" | "0" | "off" | "false") {
        return None;
    }
    let topo = topology_from_workload(space, workload, platform);
    let oracle = dr_lint::PrefixDeadlockOracle::new(space, topo);
    Some(Arc::new(move |prefix: &dr_dag::Prefix| {
        oracle.provably_deadlocked(prefix)
    }))
}

/// Schedule cap of the pipeline's space-level lint pass
/// (`DR_LINT_SPACE_CAP`, default 4096; `0` lints the whole space).
fn space_lint_cap() -> usize {
    std::env::var("DR_LINT_SPACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(4096)
}

/// Emits an event when a live sink is present (the pipeline's phase and
/// run lifecycle events all go through here).
fn emit(events: Option<&EventSink>, kind: &str, fields: &[(&str, Field)]) {
    if let Some(sink) = events {
        sink.emit(kind, fields);
    }
}

/// [`run_pipeline_traced`] with a structured event stream (schema
/// `dr-events/v1`): `run-start`/`run-end` bracket the run,
/// `phase-start`/`phase-end` bracket each pipeline phase (the explore
/// end event carries record, cache, and quarantine counters), workers
/// emit lifecycle events, MCTS iterations and evaluations are sampled
/// (`DR_EVENTS_RATE`, default 16). The report's provenance run id is
/// taken from the sink so the event stream, report, and ledger entry
/// all name the same run. A `None` or disabled sink makes this exactly
/// [`run_pipeline_traced`]; either way the mined result is bit-identical
/// to the unobserved run.
pub fn run_pipeline_watched<W: Workload + Sync>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
    tracer: &Tracer,
    events: Option<&EventSink>,
) -> Result<InstrumentedRun, SimError> {
    run_pipeline_stored(
        space, workload, platform, strategy, cfg, tracer, events, None,
    )
}

/// [`run_pipeline_watched`] backed by a durable [`dr_store::ResultStore`]:
/// every evaluator stack consults the store before simulating and commits
/// each fresh measurement to disk before returning it, so a re-run over
/// the same store answers every already-measured traversal from disk
/// (`store.stats().hits` proves it) and a crash mid-run loses at most the
/// in-flight record. The store sits *inside* the lint/trace/watch layers,
/// so observability counters are identical between cold and warm runs;
/// only the simulator is skipped. A `None` store makes this exactly
/// [`run_pipeline_watched`].
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_stored<W: Workload + Sync>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
    tracer: &Tracer,
    events: Option<&EventSink>,
    store: Option<Arc<dr_store::ResultStore>>,
) -> Result<InstrumentedRun, SimError> {
    let events = events.filter(|s| s.is_enabled());
    let mut main = tracer.lane("pipeline");
    main.enter("pipeline");
    main.annotate("strategy", strategy.name());
    let sw = Stopwatch::start();
    emit(
        events,
        "run-start",
        &[
            ("strategy", strategy.name().into()),
            (
                "space",
                (space.count_traversals().min(u64::MAX as u128) as u64).into(),
            ),
        ],
    );
    let out = run_pipeline_spanned(
        space, workload, platform, strategy, cfg, tracer, &mut main, events, store,
    );
    match &out {
        Ok(run) => emit(
            events,
            "run-end",
            &[
                ("seconds", sw.elapsed().into()),
                ("records", run.result.records.len().into()),
                ("rulesets", run.result.rulesets.len().into()),
                ("classes", run.result.labeling.num_classes.into()),
                ("ok", true.into()),
            ],
        ),
        Err(e) => emit(
            events,
            "run-end",
            &[
                ("seconds", sw.elapsed().into()),
                ("error", e.to_string().into()),
                ("ok", false.into()),
            ],
        ),
    }
    if let Some(sink) = events {
        sink.flush();
    }
    match &out {
        Ok(run) => {
            main.annotate("records", run.result.records.len());
            main.annotate("rulesets", run.result.rulesets.len());
            main.annotate("cache_hits", run.cache.hits);
            main.annotate("cache_misses", run.cache.misses);
            if let Some(r) = &run.report.resilience {
                main.annotate("quarantined", r.quarantined);
                main.annotate("retries", r.retries);
            }
            if let Some(l) = &run.report.lint {
                main.annotate("lint_errors", l.errors);
                main.annotate("lint_warnings", l.warnings);
            }
        }
        Err(e) => main.annotate("error", e),
    }
    main.exit();
    out
}

/// The traced pipeline's body; `main` carries the open root span and
/// `events` the (already enabled-filtered) event sink, if any.
#[allow(clippy::too_many_arguments)]
fn run_pipeline_spanned<W: Workload + Sync>(
    space: &DecisionSpace,
    workload: &W,
    platform: &Platform,
    strategy: Strategy,
    cfg: &PipelineConfig,
    tracer: &Tracer,
    main: &mut Lane,
    events: Option<&EventSink>,
    store: Option<Arc<dr_store::ResultStore>>,
) -> Result<InstrumentedRun, SimError> {
    let mut phases = Phases::new();
    let threads = resolve_threads((cfg.threads > 0).then_some(cfg.threads));
    let faults = if cfg.faults.is_active() {
        cfg.faults
    } else {
        match FaultConfig::from_env() {
            Ok(Some(f)) => f,
            Ok(None) => FaultConfig::clean(),
            Err(msg) => {
                return Err(SimError::Faulted {
                    detail: format!("invalid DR_FAULTS: {msg}"),
                })
            }
        }
    };
    let resilience = faults
        .is_active()
        .then(|| Arc::new(ResilienceTotals::default()));
    let lint_ctx = cfg.lint.then(|| {
        (
            Arc::new(LintTotals::default()),
            topology_from_workload(space, workload, platform),
        )
    });
    // With faults active, MCTS must quarantine instead of aborting:
    // unless the caller chose a cap, tolerate up to the whole budget.
    let strategy = match strategy {
        Strategy::Mcts {
            iterations,
            mut config,
        } if resilience.is_some() && config.max_failures == 0 => {
            config.max_failures = iterations;
            Strategy::Mcts { iterations, config }
        }
        s => s,
    };
    let prune = lint_prune_hook(space, workload, platform);
    main.annotate("threads", threads);
    main.annotate("lint", cfg.lint);
    main.annotate("lint_prune", prune.is_some());
    main.annotate("faults_active", faults.is_active());
    main.enter("explore");
    let dispatch = main.current();
    emit(
        events,
        "phase-start",
        &[("phase", "explore".into()), ("threads", threads.into())],
    );
    // Each worker's evaluator stack gets its own `eval-{n}` lane; the
    // wrapper is the stack's outermost layer so its span covers cache
    // lookups, lint, fault retries, and the simulator run. The event
    // watch wraps even that, so its wall time covers the whole stack.
    let eval_ix = AtomicUsize::new(0);
    let eval_lane = || {
        let n = eval_ix.fetch_add(1, Ordering::Relaxed);
        tracer.lane(&format!("eval-{n}"))
    };
    let watch = events.map(|s| EvalWatch::new(s.clone(), events_rate()));
    let sw = Stopwatch::start();
    let explored = match (&resilience, &lint_ctx) {
        (Some(totals), Some((lint, topo))) => explore_parallel_resilient_watched_backend(
            space,
            || {
                WatchedEvaluator::new(
                    TracingEvaluator::new(
                        LintingEvaluator::new(
                            StoredEvaluator::new(
                                ResilientEvaluator::new(
                                    space,
                                    workload,
                                    platform,
                                    cfg.bench,
                                    faults,
                                    totals.clone(),
                                ),
                                store.clone(),
                            ),
                            space,
                            topo,
                            lint.clone(),
                        ),
                        eval_lane(),
                    ),
                    watch.clone(),
                )
            },
            strategy,
            threads,
            tracer,
            dispatch,
            events,
            cfg.search,
            prune.clone(),
        ),
        (Some(totals), None) => explore_parallel_resilient_watched_backend(
            space,
            || {
                WatchedEvaluator::new(
                    TracingEvaluator::new(
                        StoredEvaluator::new(
                            ResilientEvaluator::new(
                                space,
                                workload,
                                platform,
                                cfg.bench,
                                faults,
                                totals.clone(),
                            ),
                            store.clone(),
                        ),
                        eval_lane(),
                    ),
                    watch.clone(),
                )
            },
            strategy,
            threads,
            tracer,
            dispatch,
            events,
            cfg.search,
            prune.clone(),
        ),
        (None, Some((lint, topo))) => explore_parallel_watched_backend(
            space,
            || {
                WatchedEvaluator::new(
                    TracingEvaluator::new(
                        LintingEvaluator::new(
                            StoredEvaluator::new(
                                SimEvaluator::new(space, workload, platform, cfg.bench),
                                store.clone(),
                            ),
                            space,
                            topo,
                            lint.clone(),
                        ),
                        eval_lane(),
                    ),
                    watch.clone(),
                )
            },
            strategy,
            threads,
            tracer,
            dispatch,
            events,
            cfg.search,
            prune.clone(),
        ),
        (None, None) => explore_parallel_watched_backend(
            space,
            || {
                WatchedEvaluator::new(
                    TracingEvaluator::new(
                        StoredEvaluator::new(
                            SimEvaluator::new(space, workload, platform, cfg.bench),
                            store.clone(),
                        ),
                        eval_lane(),
                    ),
                    watch.clone(),
                )
            },
            strategy,
            threads,
            tracer,
            dispatch,
            events,
            cfg.search,
            prune.clone(),
        ),
    };
    let explored = match explored {
        Ok(e) => {
            main.annotate("explored_records", e.records.len());
            main.annotate("cache_hits", e.cache.hits);
            main.exit();
            e
        }
        Err(err) => {
            main.annotate("error", &err);
            main.exit();
            return Err(err);
        }
    };
    phases.add("explore", sw.elapsed());
    emit(
        events,
        "phase-end",
        &[
            ("phase", "explore".into()),
            ("seconds", sw.elapsed().into()),
            ("records", explored.records.len().into()),
            ("cache_hits", explored.cache.hits.into()),
            ("cache_misses", explored.cache.misses.into()),
            ("quarantined", explored.quarantined.into()),
            ("pruned", explored.pruned.into()),
            (
                "retries",
                resilience
                    .as_ref()
                    .map_or(0, |t| t.summary().retries)
                    .into(),
            ),
            ("evals", watch.as_ref().map_or(0, |w| w.count()).into()),
        ],
    );
    if let Some((totals, topo)) = &lint_ctx {
        phases.add("lint", totals.seconds());
        // The space-level pass: incremental full-space verification with
        // checkpointed happens-before state, bounded by
        // `DR_LINT_SPACE_CAP` (default 4096 schedules, 0 = unlimited).
        let cap = space_lint_cap();
        main.enter("lint-space");
        emit(events, "phase-start", &[("phase", "lint-space".into())]);
        let sw = Stopwatch::start();
        let sl = lint_space_watched(space, Some(topo), cap, events);
        phases.add("lint-space", sw.elapsed());
        main.annotate("space_schedules", sl.stats.schedules);
        main.annotate("hb_expansions", sl.stats.hb_expansions);
        main.annotate("distinct_diags", sl.diags.len());
        main.exit();
        emit(
            events,
            "phase-end",
            &[
                ("phase", "lint-space".into()),
                ("seconds", sw.elapsed().into()),
                ("schedules", sl.stats.schedules.into()),
                ("distinct_diags", sl.diags.len().into()),
            ],
        );
        totals.absorb_space(&sl.stats);
    }
    if let Some(totals) = &resilience {
        totals.note_quarantined(explored.quarantined);
    }
    if explored.records.is_empty() {
        return Err(SimError::Faulted {
            detail: format!(
                "no measurements survived: {} traversals quarantined",
                explored.quarantined
            ),
        });
    }
    // Chaos runs label robustly unless the caller already opted in.
    let mine_cfg = match &resilience {
        Some(_) if cfg.labeling.outlier_mad_k == 0.0 => PipelineConfig {
            labeling: dr_ml::LabelingConfig {
                outlier_mad_k: dr_ml::LabelingConfig::robust().outlier_mad_k,
                ..cfg.labeling
            },
            ..*cfg
        },
        _ => *cfg,
    };
    let result = mine_rules_watched(
        space,
        explored.records,
        &mine_cfg,
        &mut phases,
        main,
        events,
    );
    let search = SearchSummary::from_telemetry(strategy.name(), &explored.telemetry)
        .with_tree(explored.tree, explored.exhausted);
    let mut report = RunReport::new(phases, explored.sim, search, &result);
    // The event stream, report, and ledger entry must all name the same
    // run.
    if let Some(sink) = events {
        report.provenance.run_id = sink.run_id().to_string();
    }
    report.lint = lint_ctx.map(|(totals, _)| totals.summary());
    report.resilience = resilience.map(|totals| totals.summary());
    Ok(InstrumentedRun {
        result,
        report,
        telemetry: explored.telemetry,
        cache: explored.cache,
        threads: explored.threads,
    })
}

/// The mining half of the pipeline, reusable when records were collected
/// elsewhere (e.g. shared between experiments).
pub fn mine_rules(
    space: &DecisionSpace,
    records: Vec<ExploredRecord>,
    cfg: &PipelineConfig,
) -> PipelineResult {
    mine_rules_timed(space, records, cfg, &mut Phases::new())
}

/// [`mine_rules`], recording each stage's wall-clock duration into
/// `phases` under the names `label`, `featurize`, `train`, and `rules`.
pub fn mine_rules_timed(
    space: &DecisionSpace,
    records: Vec<ExploredRecord>,
    cfg: &PipelineConfig,
    phases: &mut Phases,
) -> PipelineResult {
    let tracer = Tracer::disabled();
    mine_rules_watched(space, records, cfg, phases, &mut tracer.lane("mine"), None)
}

/// [`mine_rules_timed`] with one span per mining stage on `lane`
/// (annotated with each stage's headline outcome) and
/// `phase-start`/`phase-end` events on `events`.
fn mine_rules_watched(
    space: &DecisionSpace,
    records: Vec<ExploredRecord>,
    cfg: &PipelineConfig,
    phases: &mut Phases,
    lane: &mut Lane,
    events: Option<&EventSink>,
) -> PipelineResult {
    assert!(!records.is_empty(), "cannot mine rules from zero records");
    let phase_end = |phases: &Phases, name: &str, out: Field| {
        emit(
            events,
            "phase-end",
            &[
                ("phase", name.into()),
                ("seconds", phases.get(name).unwrap_or(0.0).into()),
                ("out", out),
            ],
        );
    };
    let times: Vec<f64> = records.iter().map(|r| r.result.time()).collect();
    lane.enter("label");
    emit(events, "phase-start", &[("phase", "label".into())]);
    let labeling = phases.time("label", || label_times(&times, &cfg.labeling));
    lane.annotate("classes", labeling.num_classes);
    lane.exit();
    phase_end(phases, "label", labeling.num_classes.into());
    let traversals: Vec<&Traversal> = records.iter().map(|r| &r.traversal).collect();
    lane.enter("featurize");
    emit(events, "phase-start", &[("phase", "featurize".into())]);
    let features = phases.time("featurize", || featurize(space, &traversals));
    lane.annotate("features", features.features.len());
    lane.exit();
    phase_end(phases, "featurize", features.features.len().into());
    lane.enter("train");
    emit(events, "phase-start", &[("phase", "train".into())]);
    let search = phases.time("train", || {
        algorithm1(
            &features.matrix,
            &labeling.labels,
            labeling.num_classes,
            &cfg.train,
        )
    });
    lane.annotate("tree_error", dr_obs::json::number(search.error));
    lane.exit();
    phase_end(phases, "train", search.error.into());
    lane.enter("rules");
    emit(events, "phase-start", &[("phase", "rules".into())]);
    let rulesets = phases.time("rules", || extract_rulesets(&search.tree, &features));
    lane.annotate("rulesets", rulesets.len());
    lane.exit();
    phase_end(phases, "rules", rulesets.len().into());
    PipelineResult {
        records,
        labeling,
        features,
        search,
        rulesets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::TableWorkload;

    /// A space with a strong, learnable performance cliff: two big
    /// kernels either overlap (different streams) or serialize.
    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 5e-4)
            .cost_all("b", 5e-4)
            .cost_all("c", 1e-5);
        let platform = dr_sim::Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        (space, w, platform)
    }

    #[test]
    fn exhaustive_pipeline_learns_the_stream_rule() {
        let (space, w, platform) = setup();
        let result = run_pipeline(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        // Two regimes: overlapped (~0.5 ms) vs serialized (~1 ms).
        assert_eq!(
            result.labeling.num_classes, 2,
            "{:?}",
            result.labeling.boundaries
        );
        assert_eq!(
            result.search.error, 0.0,
            "cliff must be perfectly learnable"
        );
        // The discriminating feature is the stream assignment.
        let stream_rules = result
            .rulesets
            .iter()
            .flat_map(|rs| rs.rules.iter())
            .filter(|r| matches!(r.kind, dr_ml::FeatureKind::SameStream(_, _)))
            .count();
        assert!(stream_rules > 0, "rules: {:?}", result.rulesets);
    }

    #[test]
    fn classify_agrees_with_training_labels() {
        let (space, w, platform) = setup();
        let result = run_pipeline(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        for (rec, &label) in result.records.iter().zip(&result.labeling.labels) {
            assert_eq!(result.classify(&space, &rec.traversal), label);
        }
    }

    #[test]
    fn mcts_pipeline_runs_on_a_budget() {
        let (space, w, platform) = setup();
        let strategy = Strategy::Mcts {
            iterations: 8,
            config: dr_mcts::MctsConfig::default(),
        };
        let result =
            run_pipeline(&space, &w, &platform, strategy, &PipelineConfig::quick()).unwrap();
        assert!(!result.records.is_empty());
        assert!(!result.rulesets.is_empty());
    }

    #[test]
    fn instrumented_pipeline_reports_phases_stats_and_telemetry() {
        let (space, w, platform) = setup();
        let strategy = Strategy::Mcts {
            iterations: 8,
            config: dr_mcts::MctsConfig::default(),
        };
        let run =
            run_pipeline_instrumented(&space, &w, &platform, strategy, &PipelineConfig::quick())
                .unwrap();
        // Every pipeline phase was timed.
        for name in ["explore", "label", "featurize", "train", "rules"] {
            assert!(
                run.report.phases.get(name).is_some(),
                "missing phase {name}"
            );
        }
        // Telemetry: one row per iteration, summarized faithfully.
        assert_eq!(run.telemetry.len(), 8);
        assert_eq!(run.report.search.strategy, "mcts");
        assert_eq!(run.report.search.iterations, 8);
        assert_eq!(
            run.report.search.unique_traversals,
            run.result.records.len()
        );
        // The SimEvaluator accumulated simulator statistics.
        let sim = run.report.sim.as_ref().expect("sim stats present");
        assert!(sim.runs > 0 && sim.instructions > 0);
        // The JSON rendering is syntactically valid.
        dr_obs::json::validate(&run.report.to_json()).unwrap();
        let text = run.report.render_text();
        assert!(text.contains("explore") && text.contains("mining:"));
    }

    #[test]
    fn lint_stage_surfaces_counters_in_the_report() {
        let (space, w, platform) = setup();
        let run = run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig {
                lint: true,
                ..PipelineConfig::quick()
            },
        )
        .unwrap();
        let lint = run.report.lint.expect("lint summary present");
        // Exhaustive exploration lints each enumerated schedule once.
        assert_eq!(lint.schedules as usize, run.result.records.len());
        assert_eq!(lint.errors, 0, "build_schedule output must verify clean");
        assert_eq!(lint.races, 0);
        assert_eq!(lint.deadlocks, 0);
        assert!(run.report.phases.get("lint").is_some());
        let json = run.report.to_json();
        dr_obs::json::validate(&json).unwrap();
        assert!(json.contains("\"lint\":{\"schedules\":"));
        assert!(run.report.render_text().contains("lint:"));
        // Without the flag, the report says so explicitly.
        let off = run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        assert!(off.report.lint.is_none());
        assert!(off.report.to_json().contains("\"lint\":null"));
    }

    #[test]
    fn chaos_pipeline_reports_resilience_and_stays_deterministic() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig {
            faults: dr_fault::FaultConfig::light().with_seed(7),
            ..PipelineConfig::quick()
        };
        let run = || {
            run_pipeline_instrumented(&space, &w, &platform, Strategy::Exhaustive, &cfg).unwrap()
        };
        let a = run();
        let r = a.report.resilience.expect("resilience block present");
        assert!(r.evaluations >= a.result.records.len() as u64);
        assert_eq!(r.quarantined, 0, "light faults never kill an execution");
        // Light faults are outlier-only: the median survives, so the
        // stream cliff still labels into two perfectly learnable classes.
        assert_eq!(a.result.labeling.num_classes, 2);
        assert_eq!(a.result.search.error, 0.0);
        // Injected outliers show up in the merged simulator counters.
        let sim = a.report.sim.as_ref().expect("sim stats present");
        assert!(sim.faults.outliers > 0, "{:?}", sim.faults);
        assert_eq!(sim.faults.drops, 0);
        // Reruns are bit-for-bit identical.
        let b = run();
        assert_eq!(a.result.records.len(), b.result.records.len());
        for (x, y) in a.result.records.iter().zip(&b.result.records) {
            assert_eq!(x.traversal, y.traversal);
            assert_eq!(x.result, y.result);
        }
        assert_eq!(a.result.labeling.labels, b.result.labeling.labels);
        // The JSON report carries the resilience block.
        let json = a.report.to_json();
        dr_obs::json::validate(&json).unwrap();
        assert!(json.contains("\"resilience\":{\"evaluations\":"));
        assert!(a.report.render_text().contains("resilience:"));
        // Fault-free runs keep the pre-chaos shape — unless the test
        // suite itself runs under DR_FAULTS, in which case the inactive
        // config defers to the environment by design.
        let clean = run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig::quick(),
        )
        .unwrap();
        let env_faults = dr_fault::FaultConfig::from_env().unwrap();
        if env_faults.is_none_or(|f| !f.is_active()) {
            assert!(clean.report.resilience.is_none());
            assert!(clean.report.to_json().contains("\"resilience\":null"));
        } else {
            assert!(clean.report.resilience.is_some());
        }
    }

    #[test]
    fn chaos_pipeline_with_lint_keeps_both_reports() {
        let (space, w, platform) = setup();
        let run = run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig {
                lint: true,
                faults: dr_fault::FaultConfig::light().with_seed(3),
                ..PipelineConfig::quick()
            },
        )
        .unwrap();
        let lint = run.report.lint.expect("lint summary present");
        assert_eq!(lint.schedules as usize, run.result.records.len());
        assert!(run.report.resilience.is_some());
    }

    #[test]
    #[should_panic(expected = "zero records")]
    fn mining_zero_records_panics() {
        let (space, _, _) = setup();
        mine_rules(&space, Vec::new(), &PipelineConfig::quick());
    }

    #[test]
    fn traced_pipeline_matches_untraced_and_records_spans() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig {
            threads: 2,
            ..PipelineConfig::quick()
        };
        let tracer = Tracer::new();
        let traced =
            run_pipeline_traced(&space, &w, &platform, Strategy::Exhaustive, &cfg, &tracer)
                .unwrap();
        let plain =
            run_pipeline_instrumented(&space, &w, &platform, Strategy::Exhaustive, &cfg).unwrap();
        // Tracing never perturbs the mined result.
        assert_eq!(traced.result.records.len(), plain.result.records.len());
        for (a, b) in traced.result.records.iter().zip(&plain.result.records) {
            assert_eq!(a.traversal, b.traversal);
            assert_eq!(a.result, b.result);
        }
        assert_eq!(traced.result.labeling.labels, plain.result.labeling.labels);
        // The trace covers the whole pipeline: root, phases, and
        // per-evaluation spans, all closed.
        let snap = tracer.snapshot();
        for name in [
            "pipeline",
            "explore",
            "label",
            "featurize",
            "train",
            "rules",
            "evaluate",
            "worker",
        ] {
            assert!(
                snap.spans.iter().any(|s| s.name == name),
                "missing span {name}"
            );
        }
        assert!(
            snap.spans.iter().all(|s| s.end_s.is_some()),
            "all spans closed"
        );
        // The explore phase is a child of the root pipeline span, and
        // every evaluation counted one span.
        let root = snap.spans.iter().find(|s| s.name == "pipeline").unwrap();
        let explore = snap.spans.iter().find(|s| s.name == "explore").unwrap();
        assert_eq!(explore.parent, Some(root.id));
        let evals = snap.spans.iter().filter(|s| s.name == "evaluate").count();
        assert_eq!(evals, traced.result.records.len());
        // Workers link back to the explore dispatch span.
        assert!(snap.follows.iter().any(|(pred, _)| *pred == explore.id));
        // The Chrome export is valid JSON.
        let chrome = tracer.to_chrome_json(dr_trace::PIPELINE_PID, "dr pipeline");
        dr_obs::json::validate(&chrome).unwrap();
    }

    #[test]
    fn traced_mcts_pipeline_samples_iteration_spans() {
        let (space, w, platform) = setup();
        let strategy = Strategy::Mcts {
            iterations: 8,
            config: dr_mcts::MctsConfig::default(),
        };
        let tracer = Tracer::new();
        let run = run_pipeline_traced(
            &space,
            &w,
            &platform,
            strategy,
            &PipelineConfig::quick(),
            &tracer,
        )
        .unwrap();
        assert!(!run.result.records.is_empty());
        let snap = tracer.snapshot();
        assert!(
            snap.spans.iter().any(|s| s.name == "mcts-iter"),
            "sampled MCTS iteration spans present"
        );
        assert!(snap.lanes.iter().any(|l| l.starts_with("mcts-")));
    }

    #[test]
    fn watched_pipeline_matches_plain_and_streams_events() {
        let (space, w, platform) = setup();
        let strategy = Strategy::Mcts {
            iterations: 100,
            config: dr_mcts::MctsConfig::default(),
        };
        let cfg = PipelineConfig {
            threads: 2,
            ..PipelineConfig::quick()
        };
        let buf = dr_obs::SharedBuf::new();
        let sink = EventSink::new("run-test").with_writer(Box::new(buf.clone()));
        let tracer = Tracer::disabled();
        let watched =
            run_pipeline_watched(&space, &w, &platform, strategy, &cfg, &tracer, Some(&sink))
                .unwrap();
        let plain = run_pipeline_instrumented(&space, &w, &platform, strategy, &cfg).unwrap();
        // Observation never perturbs the record set.
        let set = |r: &[ExploredRecord]| {
            r.iter()
                .map(|x| (x.traversal.clone(), x.result.time().to_bits()))
                .collect::<std::collections::HashSet<_>>()
        };
        assert_eq!(set(&watched.result.records), set(&plain.result.records));
        // The report names the same run as the event stream.
        assert_eq!(watched.report.provenance.run_id, "run-test");
        // Every line parses, sequence numbers are a gapless permutation
        // (worker threads may commit lines slightly out of order), and
        // all lifecycle kinds appear.
        let text = buf.contents();
        let mut seqs = Vec::new();
        let mut kinds = std::collections::HashSet::new();
        for line in text.lines() {
            let v = dr_obs::json::parse(line).unwrap();
            assert_eq!(
                v.path(&["schema"]).and_then(|s| s.as_str()),
                Some(dr_obs::EVENTS_SCHEMA)
            );
            assert_eq!(v.path(&["run"]).and_then(|s| s.as_str()), Some("run-test"));
            seqs.push(v.path(&["seq"]).and_then(|s| s.as_u64()).unwrap());
            kinds.insert(
                v.path(&["kind"])
                    .and_then(|k| k.as_str())
                    .unwrap()
                    .to_string(),
            );
        }
        seqs.sort_unstable();
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        for k in [
            "run-start",
            "phase-start",
            "phase-end",
            "mcts-iter",
            "eval",
            "worker-start",
            "worker-end",
            "run-end",
        ] {
            assert!(kinds.contains(k), "missing event kind {k}: {kinds:?}");
        }
        // The engine's merged tree statistics are surfaced.
        let tree = watched.report.search.tree.expect("tree stats present");
        assert!(tree.nodes > 0 && tree.rollouts > 0);
        assert!(watched.report.search.exhausted, "budget exhausts the space");
        assert!(watched.report.to_json().contains("\"exhausted\":true"));
    }

    #[test]
    fn stored_pipeline_is_bit_identical_and_warm_runs_skip_the_simulator() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig::quick();
        let dir = std::env::temp_dir().join(format!("dr-pipe-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::disabled();
        let run_with = |store: Option<Arc<dr_store::ResultStore>>| {
            run_pipeline_stored(
                &space,
                &w,
                &platform,
                Strategy::Exhaustive,
                &cfg,
                &tracer,
                None,
                store,
            )
            .unwrap()
        };
        let plain = run_with(None);
        let cold_store = Arc::new(dr_store::ResultStore::open(&dir).unwrap());
        let cold = run_with(Some(cold_store.clone()));
        assert_eq!(cold_store.stats().hits, 0);
        assert_eq!(
            cold_store.stats().appended as usize,
            cold.result.records.len()
        );
        // A warm run over a fresh handle answers everything from disk.
        let warm_store = Arc::new(dr_store::ResultStore::open(&dir).unwrap());
        let warm = run_with(Some(warm_store.clone()));
        assert_eq!(warm_store.stats().appended, 0, "nothing re-simulated");
        assert_eq!(
            warm_store.stats().hits as usize,
            warm.result.records.len(),
            "every record answered from the store"
        );
        // The store never perturbs the mined result.
        for runs in [[&plain, &cold], [&cold, &warm]] {
            assert_eq!(runs[0].result.records.len(), runs[1].result.records.len());
            for (a, b) in runs[0].result.records.iter().zip(&runs[1].result.records) {
                assert_eq!(a.traversal, b.traversal);
                assert_eq!(a.result, b.result);
            }
            assert_eq!(
                runs[0].result.labeling.labels,
                runs[1].result.labeling.labels
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threaded_pipeline_matches_serial_on_exhaustive() {
        let (space, w, platform) = setup();
        let serial = run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig {
                threads: 1,
                ..PipelineConfig::quick()
            },
        )
        .unwrap();
        let par = run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            Strategy::Exhaustive,
            &PipelineConfig {
                threads: 4,
                ..PipelineConfig::quick()
            },
        )
        .unwrap();
        assert_eq!(serial.threads, 1);
        assert_eq!(par.threads, 4);
        assert_eq!(par.result.records.len(), serial.result.records.len());
        for (a, b) in par.result.records.iter().zip(&serial.result.records) {
            assert_eq!(a.traversal, b.traversal);
            assert_eq!(a.result, b.result);
        }
        assert_eq!(par.result.labeling.labels, serial.result.labeling.labels);
        assert_eq!(par.result.search.error, serial.result.search.error);
    }
}
