//! Evaluation spans: a transparent [`Evaluator`] wrapper that records one
//! `evaluate` span per benchmark call on its own tracer lane.
//!
//! The traced pipeline wraps every per-worker evaluator stack in a
//! [`TracingEvaluator`] as its outermost layer, so the span covers the
//! whole stack — cache lookups, lint, fault retries, and the simulator
//! itself. With a disabled tracer the wrapper is a pure pass-through.

use dr_dag::Traversal;
use dr_mcts::Evaluator;
use dr_sim::{BenchResult, SimError, SimStats};
use dr_trace::Lane;

/// Wraps an evaluator and records an `evaluate` span (annotated with the
/// evaluation seed and outcome) around every call.
pub struct TracingEvaluator<E> {
    inner: E,
    lane: Lane,
}

impl<E> TracingEvaluator<E> {
    /// Wraps `inner`, recording spans on `lane`.
    pub fn new(inner: E, lane: Lane) -> Self {
        TracingEvaluator { inner, lane }
    }
}

impl<E: Evaluator> Evaluator for TracingEvaluator<E> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        self.lane.enter("evaluate");
        self.lane.annotate("eval_seed", seed);
        let out = self.inner.evaluate(t, seed);
        match &out {
            Ok(r) => self
                .lane
                .annotate("t_median_s", dr_obs::json::number(r.time())),
            Err(e) => self.lane.annotate("error", e),
        }
        self.lane.exit();
        out
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        self.inner.sim_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_trace::Tracer;

    fn flat_result(time: f64) -> BenchResult {
        BenchResult {
            measurements: vec![time],
            percentiles: dr_sim::Percentiles {
                p01: time,
                p10: time,
                p50: time,
                p90: time,
                p99: time,
            },
        }
    }

    #[test]
    fn traced_evaluator_is_transparent_and_records_spans() {
        let t = Traversal { steps: vec![] };
        let tracer = Tracer::new();
        let base = |_: &Traversal, seed: u64| Ok(flat_result(1e-6 * (seed as f64 + 1.0)));
        let mut plain = base;
        let mut traced = TracingEvaluator::new(base, tracer.lane("eval-0"));
        let a = plain.evaluate(&t, 7).expect("plain evaluation succeeds");
        let b = traced.evaluate(&t, 7).expect("traced evaluation succeeds");
        assert_eq!(a.time(), b.time());
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "evaluate");
        assert!(snap.spans[0]
            .notes
            .iter()
            .any(|(k, v)| k == "eval_seed" && v == "7"));
    }
}
