//! Run analytics over a ledger history: list, filter, inspect, trend.
//!
//! The ledger (see [`crate::ledger`]) accumulates one self-describing
//! JSON line per instrumented run. This module is the query side:
//! filter entries by scenario / seed / git describe, render one-line
//! summaries and full views, and compute phase / cache / resilience
//! trends across the selected history. `runs diff` support is
//! deliberately thin — it selects two entries and hands them to
//! [`crate::compare_ledgers`] as single-entry histories, so its verdict
//! (and exit status) agrees with `compare` on the same entries by
//! construction.

use crate::compare::{compare_ledgers, CompareOptions, CompareReport};
use dr_obs::json::Value;

/// Predicate over ledger entries; empty filter matches everything.
#[derive(Debug, Clone, Default)]
pub struct RunFilter {
    /// Exact scenario name to keep (`spmv`, `halo`, ...).
    pub scenario: Option<String>,
    /// Exact search seed to keep.
    pub seed: Option<u64>,
    /// Substring of the provenance git describe to keep.
    pub git: Option<String>,
}

fn str_at<'v>(e: &'v Value, path: &[&str]) -> &'v str {
    e.path(path).and_then(Value::as_str).unwrap_or("?")
}

fn u64_at(e: &Value, path: &[&str]) -> u64 {
    e.path(path).and_then(Value::as_u64).unwrap_or_default()
}

impl RunFilter {
    /// Whether the entry passes every set predicate.
    pub fn matches(&self, e: &Value) -> bool {
        if let Some(s) = &self.scenario {
            if str_at(e, &["scenario"]) != s {
                return false;
            }
        }
        if let Some(seed) = self.seed {
            if u64_at(e, &["seed"]) != seed {
                return false;
            }
        }
        if let Some(git) = &self.git {
            if !str_at(e, &["provenance", "git"]).contains(git.as_str()) {
                return false;
            }
        }
        true
    }
}

/// The filtered entries with their positions in the full history
/// (positions are what `runs show 3` selects).
pub fn select<'a>(entries: &'a [Value], filter: &RunFilter) -> Vec<(usize, &'a Value)> {
    entries
        .iter()
        .enumerate()
        .filter(|(_, e)| filter.matches(e))
        .collect()
}

/// Resolves a selector — a zero-based history index or a run-id prefix —
/// to one entry.
pub fn find_entry<'a>(entries: &'a [Value], selector: &str) -> Result<(usize, &'a Value), String> {
    if let Ok(idx) = selector.parse::<usize>() {
        return entries
            .get(idx)
            .map(|e| (idx, e))
            .ok_or_else(|| format!("no ledger entry {idx} (history has {})", entries.len()));
    }
    let hits: Vec<(usize, &Value)> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| str_at(e, &["provenance", "run_id"]).starts_with(selector))
        .collect();
    match hits.len() {
        0 => Err(format!("no ledger entry with run id {selector:?}")),
        1 => Ok(hits[0]),
        n => Err(format!("run id {selector:?} is ambiguous ({n} entries)")),
    }
}

/// One-line summary of an entry, for `runs list`.
pub fn summary_line(index: usize, e: &Value) -> String {
    let faults = if e.path(&["resilience"]).is_some_and(|r| !r.is_null()) {
        " faults"
    } else {
        ""
    };
    format!(
        "[{index}] {} git {} | {} {} seed {} iter {} | {} records fp {} | {} rulesets{faults}",
        str_at(e, &["provenance", "run_id"]),
        str_at(e, &["provenance", "git"]),
        str_at(e, &["scenario"]),
        str_at(e, &["strategy"]),
        u64_at(e, &["seed"]),
        u64_at(e, &["iterations"]),
        u64_at(e, &["records", "count"]),
        str_at(e, &["records", "fingerprint"]),
        e.get("rules")
            .and_then(Value::as_arr)
            .map_or(0, <[Value]>::len),
    )
}

fn counter_block(e: &Value, block: &str) -> Option<Vec<(String, u64)>> {
    match e.get(block) {
        Some(Value::Obj(members)) => Some(
            members
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect(),
        ),
        _ => None,
    }
}

/// Full text view of one entry, for `runs show`.
pub fn show_entry(index: usize, e: &Value) -> String {
    let mut out = String::new();
    out.push_str(&summary_line(index, e));
    out.push('\n');
    out.push_str(&format!(
        "  threads {} | created_unix {}\n",
        u64_at(e, &["threads"]),
        u64_at(e, &["provenance", "created_unix"]),
    ));
    if let Some(Value::Obj(phases)) = e.get("phases") {
        for (name, v) in phases {
            if let Some(s) = v.as_f64() {
                out.push_str(&format!("  phase {name}: {:.3} ms\n", s * 1e3));
            }
        }
    }
    let hits = u64_at(e, &["cache", "hits"]);
    let misses = u64_at(e, &["cache", "misses"]);
    if hits + misses > 0 {
        out.push_str(&format!(
            "  cache: {hits} hits / {misses} misses ({:.0}%)\n",
            hits as f64 / (hits + misses) as f64 * 100.0
        ));
    }
    for block in ["lint", "resilience"] {
        if let Some(counters) = counter_block(e, block) {
            let body: Vec<String> = counters.iter().map(|(k, v)| format!("{k} {v}")).collect();
            out.push_str(&format!("  {block}: {}\n", body.join(", ")));
        }
    }
    if let Some(rules) = e.get("rules").and_then(Value::as_arr) {
        for rs in rules {
            let phrases: Vec<&str> = rs
                .get("rules")
                .and_then(Value::as_arr)
                .into_iter()
                .flatten()
                .filter_map(Value::as_str)
                .collect();
            out.push_str(&format!(
                "  rule class {} ({} samples{}): {}\n",
                u64_at(rs, &["class"]),
                u64_at(rs, &["samples"]),
                if rs.get("pure").and_then(Value::as_bool) == Some(true) {
                    ", pure"
                } else {
                    ""
                },
                phrases.join(" AND ")
            ));
        }
    }
    out
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn mad(xs: &[f64], med: f64) -> f64 {
    let mut devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&mut devs)
}

/// Phase / cache / resilience trends across a selected history, for the
/// tail of `runs list`: per-phase median ± MAD, cache hit-rate sweep,
/// and total retries/quarantines across fault-injected entries.
pub fn trend_lines(entries: &[&Value]) -> Vec<String> {
    let mut out = Vec::new();
    if entries.is_empty() {
        return out;
    }
    let mut phase_names: Vec<String> = Vec::new();
    for e in entries {
        if let Some(Value::Obj(phases)) = e.get("phases") {
            for (name, _) in phases {
                if !phase_names.contains(name) {
                    phase_names.push(name.clone());
                }
            }
        }
    }
    for name in &phase_names {
        let mut xs: Vec<f64> = entries
            .iter()
            .filter_map(|e| e.path(&["phases", name]).and_then(Value::as_f64))
            .collect();
        if xs.is_empty() {
            continue;
        }
        let n = xs.len();
        let med = median(&mut xs);
        out.push(format!(
            "trend phase {name}: median {:.3} ms, mad {:.3} ms over {n} run{}",
            med * 1e3,
            mad(&xs, med) * 1e3,
            if n == 1 { "" } else { "s" }
        ));
    }
    let rates: Vec<f64> = entries
        .iter()
        .filter_map(|e| {
            let hits = u64_at(e, &["cache", "hits"]);
            let total = hits + u64_at(e, &["cache", "misses"]);
            (total > 0).then(|| hits as f64 / total as f64 * 100.0)
        })
        .collect();
    if let (Some(first), Some(last)) = (rates.first(), rates.last()) {
        out.push(format!(
            "trend cache hit rate: {first:.0}% -> {last:.0}% over {} run{}",
            rates.len(),
            if rates.len() == 1 { "" } else { "s" }
        ));
    }
    let mut retries = 0u64;
    let mut quarantined = 0u64;
    let mut faulted = 0usize;
    for e in entries {
        if let Some(counters) = counter_block(e, "resilience") {
            faulted += 1;
            for (k, v) in counters {
                match k.as_str() {
                    "retries" => retries += v,
                    "quarantined" => quarantined += v,
                    _ => {}
                }
            }
        }
    }
    if faulted > 0 {
        out.push(format!(
            "trend resilience: {retries} retries, {quarantined} quarantined across {faulted} faulted run{}",
            if faulted == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Diffs two selected entries by handing them to [`compare_ledgers`] as
/// single-entry histories: the baseline first, the candidate second.
/// The verdict matches what `compare` would report on the same entries.
pub fn diff_entries(a: &Value, b: &Value, opts: &CompareOptions) -> CompareReport {
    compare_ledgers(std::slice::from_ref(a), std::slice::from_ref(b), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_obs::json;

    fn entry(run: &str, git: &str, scenario: &str, seed: u64, explore_s: f64, fp: &str) -> Value {
        let line = format!(
            concat!(
                "{{\"schema\":\"dr-ledger/v1\",",
                "\"provenance\":{{\"run_id\":\"{}\",\"git\":\"{}\",\"created_unix\":1}},",
                "\"scenario\":\"{}\",\"strategy\":\"exhaustive\",\"seed\":{},\"iterations\":0,",
                "\"threads\":1,\"config\":{{\"lint\":false,\"faults_active\":false}},",
                "\"phases\":{{\"explore\":{},\"train\":0.001}},",
                "\"cache\":{{\"hits\":3,\"misses\":1}},",
                "\"records\":{{\"count\":8,\"fingerprint\":\"{}\"}},",
                "\"lint\":null,\"resilience\":null,",
                "\"rules\":[{{\"class\":0,\"samples\":4,\"pure\":true,\"rules\":[\"x\"],",
                "\"support\":[0],\"class_split\":[4,0]}}]}}"
            ),
            run, git, scenario, seed, explore_s, fp
        );
        json::parse(&line).unwrap()
    }

    #[test]
    fn filters_by_scenario_seed_and_git() {
        let entries = vec![
            entry("r1", "v1-g1", "spmv", 7, 0.01, "aaaa"),
            entry("r2", "v1-g2", "halo", 7, 0.01, "bbbb"),
            entry("r3", "v2-g3", "spmv", 9, 0.01, "cccc"),
        ];
        let f = RunFilter {
            scenario: Some("spmv".into()),
            ..RunFilter::default()
        };
        let hits = select(&entries, &f);
        assert_eq!(hits.iter().map(|(i, _)| *i).collect::<Vec<_>>(), [0, 2]);
        let f = RunFilter {
            seed: Some(7),
            git: Some("v1".into()),
            ..RunFilter::default()
        };
        assert_eq!(select(&entries, &f).len(), 2);
    }

    #[test]
    fn selectors_accept_index_and_run_id_prefix() {
        let entries = vec![
            entry("run-alpha", "g", "spmv", 1, 0.01, "aaaa"),
            entry("run-beta", "g", "spmv", 2, 0.01, "bbbb"),
        ];
        assert_eq!(find_entry(&entries, "1").unwrap().0, 1);
        assert_eq!(find_entry(&entries, "run-b").unwrap().0, 1);
        assert!(find_entry(&entries, "9").is_err());
        assert!(find_entry(&entries, "nope").is_err());
        assert!(find_entry(&entries, "run-").is_err(), "ambiguous prefix");
    }

    #[test]
    fn list_show_and_trends_render() {
        let entries = [
            entry("r1", "v1", "spmv", 7, 0.010, "aaaa"),
            entry("r2", "v1", "spmv", 7, 0.014, "aaaa"),
        ];
        let line = summary_line(0, &entries[0]);
        assert!(line.contains("[0] r1 git v1"), "{line}");
        assert!(line.contains("8 records fp aaaa"), "{line}");
        let show = show_entry(1, &entries[1]);
        assert!(show.contains("phase explore: 14.000 ms"), "{show}");
        assert!(show.contains("cache: 3 hits / 1 misses (75%)"), "{show}");
        assert!(show.contains("rule class 0 (4 samples, pure): x"), "{show}");
        let refs: Vec<&Value> = entries.iter().collect();
        let trends = trend_lines(&refs);
        assert!(
            trends.iter().any(|t| t.contains("trend phase explore")),
            "{trends:?}"
        );
        assert!(
            trends.iter().any(|t| t.contains("trend cache hit rate")),
            "{trends:?}"
        );
    }

    #[test]
    fn diff_agrees_with_compare_on_the_same_entries() {
        let a = entry("r1", "v1", "spmv", 7, 0.010, "aaaa");
        let b = entry("r2", "v1", "spmv", 7, 0.010, "bbbb");
        let opts = CompareOptions::default();
        let diff = diff_entries(&a, &b, &opts);
        let cmp = compare_ledgers(std::slice::from_ref(&a), std::slice::from_ref(&b), &opts);
        assert_eq!(diff.is_regression(), cmp.is_regression());
        assert!(diff.is_regression(), "fingerprint divergence regresses");
        let same = diff_entries(&a, &a, &opts);
        assert!(!same.is_regression());
    }
}
