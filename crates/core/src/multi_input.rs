//! Rules that generalize across inputs (paper future work, Section VI:
//! "A natural extension is to generate rules that generalize across
//! inputs. This extension requires changes to the feature-vector
//! generation to include features that discriminate between inputs.")
//!
//! Each input (e.g. a matrix with a different bandwidth) is explored and
//! labelled independently — class 0 is *that input's* fastest regime.
//! The pooled training set then extends every traversal's feature vector
//! with binary *input features* (e.g. "remote-dominant", "messages are
//! eager"), letting one decision tree express input-conditional rules
//! such as "when remote-dominant, launch `yl` before the exchange".

use crate::pipeline::PipelineConfig;
use dr_dag::{DecisionSpace, Traversal};
use dr_mcts::ExploredRecord;
use dr_ml::{algorithm1, featurize, label_times, BitRow, FeatureSet, HyperSearch, Labeling};

/// One binary property of an input, shared across its records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputFeature {
    /// Feature name, e.g. `"remote-dominant"`.
    pub name: String,
    /// The input's value for it.
    pub value: bool,
}

/// One explored input: its records plus its input features.
#[derive(Debug, Clone)]
pub struct InputRun {
    /// Display tag, e.g. `"bandwidth n/4"`.
    pub tag: String,
    /// Explored implementations of this input.
    pub records: Vec<ExploredRecord>,
    /// Input features; every run must list the same names in the same
    /// order.
    pub input_features: Vec<InputFeature>,
}

/// A tree trained across inputs.
#[derive(Debug, Clone)]
pub struct MultiInputResult {
    /// Per-input labelings (classes are relative within each input).
    pub labelings: Vec<Labeling>,
    /// Pruned traversal features over the pooled sample set.
    pub features: FeatureSet,
    /// Names of the appended input-feature columns.
    pub input_feature_names: Vec<String>,
    /// Algorithm 1's search over the pooled data.
    pub search: HyperSearch,
    /// Largest per-input class count (the tree's label range).
    pub num_classes: usize,
}

impl MultiInputResult {
    /// Input features the tree actually splits on — the concrete answer
    /// to "do the rules need to discriminate between inputs?".
    pub fn used_input_features(&self) -> Vec<&str> {
        let offset = self.features.num_features();
        let mut used: Vec<&str> = self
            .search
            .tree
            .nodes()
            .iter()
            .filter_map(|n| n.feature)
            .filter(|&f| f >= offset)
            .map(|f| self.input_feature_names[f - offset].as_str())
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Predicts the performance class of a traversal of `space` run on an
    /// input with the given feature values.
    pub fn classify(&self, space: &DecisionSpace, t: &Traversal, input_values: &[bool]) -> usize {
        let mut x = self.features.vector_of(space, t);
        x.extend(input_values.iter().copied());
        self.search.tree.predict(&x)
    }
}

/// Mines one rule tree across several explored inputs.
///
/// # Panics
///
/// Panics when runs are empty, a run has no records, or the input-feature
/// schemas disagree between runs.
pub fn mine_rules_multi(
    space: &DecisionSpace,
    runs: &[InputRun],
    cfg: &PipelineConfig,
) -> MultiInputResult {
    assert!(!runs.is_empty(), "need at least one input run");
    let schema: Vec<&str> = runs[0]
        .input_features
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    for run in runs {
        assert!(!run.records.is_empty(), "run {:?} has no records", run.tag);
        let names: Vec<&str> = run.input_features.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, schema, "input-feature schemas must match");
    }

    // Label each input independently.
    let labelings: Vec<Labeling> = runs
        .iter()
        .map(|run| {
            let times: Vec<f64> = run.records.iter().map(|r| r.result.time()).collect();
            label_times(&times, &cfg.labeling)
        })
        .collect();
    let num_classes = labelings
        .iter()
        .map(|l| l.num_classes)
        .max()
        .expect("non-empty");

    // Pooled traversal features (pruned over the union of all samples).
    let traversals: Vec<&Traversal> = runs
        .iter()
        .flat_map(|run| run.records.iter().map(|r| &r.traversal))
        .collect();
    let features = featurize(space, &traversals);

    // Assemble rows: traversal features ++ input features.
    let mut x: Vec<BitRow> = Vec::with_capacity(traversals.len());
    let mut y: Vec<usize> = Vec::with_capacity(traversals.len());
    let mut row = 0usize;
    for (run, labeling) in runs.iter().zip(&labelings) {
        for (i, _) in run.records.iter().enumerate() {
            let mut v = features.matrix[row].clone();
            v.extend(run.input_features.iter().map(|f| f.value));
            x.push(v);
            y.push(labeling.labels[i]);
            row += 1;
        }
    }

    let search = algorithm1(&x, &y, num_classes, &cfg.train);
    MultiInputResult {
        labelings,
        features,
        input_feature_names: schema.iter().map(|s| s.to_string()).collect(),
        search,
        num_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_ml::{DecisionTree, TrainConfig};
    use dr_sim::{BenchResult, Percentiles};

    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn result_of(t: f64) -> BenchResult {
        BenchResult {
            measurements: vec![t],
            percentiles: Percentiles {
                p01: t,
                p10: t,
                p50: t,
                p90: t,
                p99: t,
            },
        }
    }

    /// Synthetic ground truth whose fastest choice depends on the input:
    /// on "big" inputs same-stream is fast, on "small" inputs it is slow.
    fn runs(sp: &DecisionSpace) -> Vec<InputRun> {
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let mut out = Vec::new();
        for big in [true, false] {
            let records: Vec<ExploredRecord> = sp
                .enumerate()
                .enumerate()
                .map(|(i, t)| {
                    let st = t.streams(sp.num_ops());
                    let same = st[a] == st[b];
                    let fast = same == big;
                    let jitter = 1e-4 * ((i * 7919 % 97) as f64) / 97.0;
                    ExploredRecord {
                        traversal: t,
                        result: result_of(if fast { 1.0 } else { 1.5 } + jitter),
                    }
                })
                .collect();
            out.push(InputRun {
                tag: if big { "big" } else { "small" }.into(),
                records,
                input_features: vec![InputFeature {
                    name: "big-input".into(),
                    value: big,
                }],
            });
        }
        out
    }

    #[test]
    fn input_features_enable_cross_input_rules() {
        let sp = space();
        let runs = runs(&sp);
        let result = mine_rules_multi(&sp, &runs, &PipelineConfig::quick());
        assert_eq!(result.search.error, 0.0, "input feature makes it separable");
        assert_eq!(result.used_input_features(), vec!["big-input"]);
        // Without the input feature, the pooled problem is inherently
        // ambiguous: same feature vector, different labels.
        let traversals: Vec<&Traversal> = runs
            .iter()
            .flat_map(|r| r.records.iter().map(|rec| &rec.traversal))
            .collect();
        let fs = featurize(&sp, &traversals);
        let y: Vec<usize> = runs
            .iter()
            .flat_map(|r| {
                let times: Vec<f64> = r.records.iter().map(|rec| rec.result.time()).collect();
                label_times(&times, &Default::default()).labels
            })
            .collect();
        let blind = DecisionTree::fit(&fs.matrix, &y, 2, &TrainConfig::default());
        assert!(
            blind.error(&fs.matrix, &y) > 0.2,
            "without input features the classes are not separable: {}",
            blind.error(&fs.matrix, &y)
        );
    }

    #[test]
    fn classify_flips_with_the_input() {
        let sp = space();
        let runs = runs(&sp);
        let result = mine_rules_multi(&sp, &runs, &PipelineConfig::quick());
        let same_stream = sp
            .traversal_from_names(&[
                ("a", Some(0)),
                ("CER-after-a", None),
                ("b", Some(0)),
                ("CER-after-b", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        assert_eq!(
            result.classify(&sp, &same_stream, &[true]),
            0,
            "fast on big"
        );
        assert_eq!(
            result.classify(&sp, &same_stream, &[false]),
            1,
            "slow on small"
        );
    }

    #[test]
    #[should_panic(expected = "schemas must match")]
    fn mismatched_schemas_panic() {
        let sp = space();
        let mut rs = runs(&sp);
        rs[1].input_features[0].name = "other".into();
        mine_rules_multi(&sp, &rs, &PipelineConfig::quick());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_runs_panic() {
        mine_rules_multi(&space(), &[], &PipelineConfig::quick());
    }
}
