//! Durable-store evaluator stage: answer benchmark requests from the
//! on-disk [`ResultStore`] before simulating, and commit every fresh
//! measurement as soon as it is produced.
//!
//! The stage is sound because measurements are pure functions of
//! traversal identity (`dr_dag::eval_seed` seeds every evaluation from
//! the traversal's canonical hash): a stored result *is* the result,
//! regardless of which process, shard, or attempt produced it. That is
//! what makes kill–resume exploration cheap — a resumed run re-answers
//! every already-committed traversal from disk and only simulates the
//! remainder, with the store's hit counters as the proof.
//!
//! In the pipeline's evaluator stack the store sits *inside* the lint
//! stage (`Linting(Stored(Resilient|Sim))`), so static-analysis
//! counters are identical between cold and warm runs; only simulator
//! work is elided.

use dr_dag::Traversal;
use dr_mcts::Evaluator;
use dr_sim::{BenchResult, SimError, SimStats};
use dr_store::ResultStore;
use std::sync::Arc;

/// Wraps an evaluator with a read-through/write-through durable store.
/// With `store: None` the stage is a transparent passthrough, so one
/// code path serves both stored and plain runs.
pub struct StoredEvaluator<E> {
    inner: E,
    store: Option<Arc<ResultStore>>,
}

impl<E> StoredEvaluator<E> {
    /// Builds the stage; `None` disables it.
    pub fn new(inner: E, store: Option<Arc<ResultStore>>) -> Self {
        StoredEvaluator { inner, store }
    }
}

impl<E: Evaluator> Evaluator for StoredEvaluator<E> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        let Some(store) = &self.store else {
            return self.inner.evaluate(t, seed);
        };
        if let Some(result) = store.lookup(t) {
            return Ok(result);
        }
        let result = self.inner.evaluate(t, seed)?;
        store.append(t, &result).map_err(|e| SimError::Faulted {
            detail: format!("result store append failed: {e}"),
        })?;
        Ok(result)
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        self.inner.sim_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{eval_seed, CostKey, DagBuilder, DecisionSpace, OpSpec};
    use dr_mcts::SimEvaluator;
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        (space, w, Platform::perlmutter_like().noiseless())
    }

    #[test]
    fn cold_run_commits_warm_run_answers_from_disk() {
        let (space, w, platform) = setup();
        let dir = std::env::temp_dir().join(format!("dr-storestage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let traversals: Vec<_> = space.enumerate().collect();

        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let mut cold = StoredEvaluator::new(
            SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            Some(store.clone()),
        );
        let cold_results: Vec<BenchResult> = traversals
            .iter()
            .map(|t| cold.evaluate(t, eval_seed(0xE0E0_0000, t)).unwrap())
            .collect();
        assert_eq!(store.stats().appended as usize, traversals.len());
        assert_eq!(store.stats().hits, 0);
        drop(store);

        // A fresh process: same results, zero simulation.
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let mut warm = StoredEvaluator::new(
            SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            Some(store.clone()),
        );
        for (t, expect) in traversals.iter().zip(&cold_results) {
            let got = warm.evaluate(t, eval_seed(0xE0E0_0000, t)).unwrap();
            assert_eq!(&got, expect);
        }
        let s = store.stats();
        assert_eq!(s.hits as usize, traversals.len());
        assert_eq!(s.appended, 0, "warm run simulates nothing");
        assert_eq!(
            warm.sim_stats().map_or(0, |st| st.runs),
            0,
            "the simulator never ran on the warm path"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn passthrough_without_a_store() {
        let (space, w, platform) = setup();
        let t = space.enumerate().next().unwrap();
        let seed = eval_seed(1, &t);
        let mut plain = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let expect = Evaluator::evaluate(&mut plain, &t, seed).unwrap();
        let mut staged = StoredEvaluator::new(
            SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            None,
        );
        assert_eq!(staged.evaluate(&t, seed).unwrap(), expect);
        assert!(staged.sim_stats().is_some_and(|s| s.runs > 0));
    }
}
