//! The run ledger: an append-only JSONL record of pipeline runs.
//!
//! Every instrumented run can be distilled into one self-describing
//! JSON line — provenance, configuration, per-phase timings, search
//! telemetry summary, resilience/lint counters, a fingerprint of the
//! record set, and the mined rule set with per-rule provenance (which
//! explored implementations support each ruleset, split by class).
//! Lines append to `ledger.jsonl` inside the directory named by the
//! `DR_LEDGER` environment variable (or a `--ledger` flag), so a ledger
//! accumulates history across runs and machines; the `compare` command
//! ([`crate::compare_ledgers`]) diffs two such histories for
//! regressions.
//!
//! The schema is versioned ([`LEDGER_SCHEMA`]): consumers skip lines
//! whose `schema` field they do not recognize, so the format can evolve
//! without invalidating old ledgers.

use crate::pipeline::InstrumentedRun;
use crate::synthesize::satisfies;
use dr_dag::DecisionSpace;
use dr_mcts::ExploredRecord;
use dr_obs::json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version tag of the ledger line format.
pub const LEDGER_SCHEMA: &str = "dr-ledger/v1";

/// File name of the ledger inside a `DR_LEDGER` directory.
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// The run identity a ledger entry is filed under (everything that must
/// match for two entries to be comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerContext<'a> {
    /// Scenario name (e.g. `spmv`, `halo`).
    pub scenario: &'a str,
    /// Strategy name (`exhaustive`, `mcts`, or `random`).
    pub strategy: &'a str,
    /// The search seed (0 for the seedless exhaustive strategy).
    pub seed: u64,
    /// The iteration budget (0 for exhaustive).
    pub iterations: u64,
}

/// The ledger directory named by the `DR_LEDGER` environment variable,
/// if set and non-empty.
pub fn ledger_dir_from_env() -> Option<PathBuf> {
    std::env::var("DR_LEDGER")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// Order-sensitive FNV-1a fingerprint of the record set: folds each
/// record's canonical traversal hash and the exact bits of its measured
/// time. Two runs with equal fingerprints measured the same
/// implementations to the same values in the same order.
pub fn records_fingerprint(records: &[ExploredRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in records {
        mix(r.traversal.canonical_hash());
        mix(r.result.time().to_bits());
    }
    h
}

/// Renders one ledger line (no trailing newline) for an instrumented
/// run. The line is self-contained: schema tag, provenance, run
/// identity, configuration, phase timings, summaries, the record-set
/// fingerprint, and each mined ruleset with its supporting records.
pub fn ledger_entry_json(
    ctx: &LedgerContext<'_>,
    run: &InstrumentedRun,
    space: &DecisionSpace,
) -> String {
    let report = &run.report;
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"provenance\":{},\"scenario\":\"{}\",\"strategy\":\"{}\",\"seed\":{},\"iterations\":{},\"threads\":{}",
        LEDGER_SCHEMA,
        report.provenance.to_json(),
        json::escape(ctx.scenario),
        json::escape(ctx.strategy),
        ctx.seed,
        ctx.iterations,
        run.threads,
    ));
    out.push_str(&format!(
        ",\"config\":{{\"lint\":{},\"faults_active\":{}}}",
        report.lint.is_some(),
        report.resilience.is_some()
    ));
    out.push_str(&format!(",\"phases\":{}", report.phases.to_json()));
    out.push_str(&format!(",\"search\":{}", report.search.to_json()));
    out.push_str(&format!(
        ",\"cache\":{{\"hits\":{},\"misses\":{}}}",
        run.cache.hits, run.cache.misses
    ));
    out.push_str(&format!(
        ",\"records\":{{\"count\":{},\"fingerprint\":\"{:016x}\"}}",
        run.result.records.len(),
        records_fingerprint(&run.result.records)
    ));
    out.push_str(&format!(
        ",\"lint\":{}",
        report
            .lint
            .as_ref()
            .map_or("null".to_string(), |l| l.to_json())
    ));
    out.push_str(&format!(
        ",\"resilience\":{}",
        report
            .resilience
            .map_or("null".to_string(), |r| r.to_json())
    ));
    out.push_str(&format!(
        ",\"mining\":{{\"num_classes\":{},\"tree_error\":{},\"num_rulesets\":{}}}",
        report.mining.num_classes,
        json::number(report.mining.tree_error),
        report.mining.num_rulesets
    ));
    out.push_str(",\"rules\":[");
    for (i, rs) in run.result.rulesets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Per-rule provenance: which explored implementations satisfy
        // every condition of this ruleset, and how those supporters
        // split across the labeled performance classes.
        let mut support: Vec<usize> = Vec::new();
        let mut split = vec![0u64; run.result.labeling.num_classes];
        for (idx, rec) in run.result.records.iter().enumerate() {
            if satisfies(space, &rec.traversal, &rs.rules) {
                support.push(idx);
                let label = run.result.labeling.labels[idx];
                if label < split.len() {
                    split[label] += 1;
                }
            }
        }
        let phrases: Vec<String> = dr_ml::render_ruleset(rs, space)
            .into_iter()
            .map(|p| format!("\"{}\"", json::escape(&p)))
            .collect();
        let support_json: Vec<String> = support.iter().map(|s| s.to_string()).collect();
        let split_json: Vec<String> = split.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!(
            "{{\"class\":{},\"samples\":{},\"pure\":{},\"rules\":[{}],\"support\":[{}],\"class_split\":[{}]}}",
            rs.class,
            rs.samples,
            rs.pure,
            phrases.join(","),
            support_json.join(","),
            split_json.join(",")
        ));
    }
    out.push_str("]}");
    debug_assert!(json::validate(&out).is_ok(), "ledger entry must be JSON");
    out
}

/// Appends one entry line to `<dir>/ledger.jsonl`, creating the
/// directory and file as needed, and returns the ledger file's path.
pub fn append_entry(dir: &Path, entry: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(LEDGER_FILE);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{entry}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        // Fabricate two tiny record lists differing only in time bits.
        let t = dr_dag::Traversal { steps: vec![] };
        let mk = |time: f64| ExploredRecord {
            traversal: t.clone(),
            result: dr_sim::BenchResult {
                measurements: vec![time],
                percentiles: dr_sim::Percentiles {
                    p01: time,
                    p10: time,
                    p50: time,
                    p90: time,
                    p99: time,
                },
            },
        };
        let a = [mk(1.0), mk(2.0)];
        let b = [mk(2.0), mk(1.0)];
        let c = [mk(1.0), mk(2.0)];
        assert_eq!(records_fingerprint(&a), records_fingerprint(&c));
        assert_ne!(records_fingerprint(&a), records_fingerprint(&b));
        assert_ne!(records_fingerprint(&a), records_fingerprint(&a[..1]));
    }

    #[test]
    fn ledger_entry_serializes_a_real_run_with_rule_provenance() {
        use dr_dag::{CostKey, DagBuilder, OpSpec};
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = dr_dag::DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = dr_sim::TableWorkload::new(1);
        w.cost_all("a", 5e-4)
            .cost_all("b", 5e-4)
            .cost_all("c", 1e-5);
        let platform = dr_sim::Platform {
            gpu_contention: 0.0,
            ..dr_sim::Platform::perlmutter_like().noiseless()
        };
        let run = crate::run_pipeline_instrumented(
            &space,
            &w,
            &platform,
            crate::Strategy::Exhaustive,
            &crate::PipelineConfig::quick(),
        )
        .unwrap();
        let ctx = LedgerContext {
            scenario: "test",
            strategy: "exhaustive",
            seed: 0,
            iterations: 0,
        };
        let entry = ledger_entry_json(&ctx, &run, &space);
        json::validate(&entry).unwrap();
        let v = json::parse(&entry).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(LEDGER_SCHEMA)
        );
        assert_eq!(
            v.path(&["records", "count"]).and_then(|c| c.as_u64()),
            Some(run.result.records.len() as u64)
        );
        assert!(v
            .path(&["provenance", "run_id"])
            .and_then(|r| r.as_str())
            .is_some());
        // Every ruleset carries supporting records, and each supporter
        // list is consistent with its class split.
        let rules = v.get("rules").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(rules.len(), run.result.rulesets.len());
        for rs in rules {
            let support = rs.get("support").and_then(|s| s.as_arr()).unwrap();
            let split = rs.get("class_split").and_then(|s| s.as_arr()).unwrap();
            assert!(!support.is_empty(), "each leaf has supporters");
            let total: u64 = split.iter().filter_map(|x| x.as_u64()).sum();
            assert_eq!(total, support.len() as u64);
        }
        // Determinism: the same run serializes to the same entry.
        assert_eq!(entry, ledger_entry_json(&ctx, &run, &space));
    }

    #[test]
    fn append_creates_dir_and_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("dr-ledger-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p1 = append_entry(&dir, "{\"schema\":\"dr-ledger/v1\"}").unwrap();
        let p2 = append_entry(&dir, "{\"schema\":\"dr-ledger/v1\"}").unwrap();
        assert_eq!(p1, p2);
        let text = std::fs::read_to_string(&p1).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
