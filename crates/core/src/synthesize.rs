//! Rule application: constructing an implementation that follows a mined
//! ruleset (paper Section V: "program implementors may take any ruleset
//! that corresponds to the desired performance class and follow the rules
//! in their implementation. Doing so will ensure the performance of the
//! implementation falls within that class.").

use dr_dag::{DecisionSpace, Placement, Prefix, Traversal};
use dr_ml::{FeatureKind, Rule};

/// Upper bound on DFS steps before giving up (guards against adversarial
/// rule combinations on huge spaces).
const MAX_STEPS: usize = 2_000_000;

/// Searches for a complete traversal satisfying every rule. Returns
/// `None` when no satisfying traversal exists (contradictory rules) or
/// the step budget runs out.
pub fn synthesize(space: &DecisionSpace, rules: &[Rule]) -> Option<Traversal> {
    let mut prefix = space.empty_prefix();
    let mut steps = 0usize;
    dfs(space, rules, &mut prefix, &mut steps)
}

fn dfs(
    space: &DecisionSpace,
    rules: &[Rule],
    prefix: &mut Prefix,
    steps: &mut usize,
) -> Option<Traversal> {
    if prefix.len() == space.num_ops() {
        return Some(Traversal {
            steps: prefix.steps().to_vec(),
        });
    }
    if *steps >= MAX_STEPS {
        return None;
    }
    for p in space.eligible(prefix) {
        *steps += 1;
        if violates(rules, prefix, p) {
            continue;
        }
        space.apply(prefix, p);
        if let Some(t) = dfs(space, rules, prefix, steps) {
            return Some(t);
        }
        space.unapply(prefix);
    }
    None
}

/// Whether placing `p` next would make some rule unsatisfiable. Also the
/// certification walk's prefix filter: a completed traversal survives
/// the filter if and only if it satisfies every rule (`Before` fires
/// when the second operand lands before the first; `SameStream` fires as
/// soon as both operands' streams are known).
pub(crate) fn violates(rules: &[Rule], prefix: &Prefix, p: Placement) -> bool {
    for r in rules {
        match r.kind {
            FeatureKind::Before(u, v) => {
                // Required order: first operand must precede second.
                let (first, second) = if r.value { (u, v) } else { (v, u) };
                if p.op == second && !prefix.is_placed(first) {
                    return true;
                }
            }
            FeatureKind::SameStream(u, v) => {
                let other = if p.op == u {
                    v
                } else if p.op == v {
                    u
                } else {
                    continue;
                };
                if let Some(os) = prefix.stream_of(other) {
                    let same = p.stream == Some(os);
                    if same != r.value {
                        return true;
                    }
                }
                // The canonical stream numbering can make a required
                // binding unreachable in one branch (e.g. "different
                // stream" when only stream 0 exists yet); DFS backtracking
                // over the other placements handles it.
            }
        }
    }
    false
}

/// Checks a complete traversal against a ruleset.
pub fn satisfies(space: &DecisionSpace, t: &Traversal, rules: &[Rule]) -> bool {
    let pos = t.positions(space.num_ops());
    let streams = t.streams(space.num_ops());
    rules.iter().all(|r| match r.kind {
        FeatureKind::Before(u, v) => (pos[u] < pos[v]) == r.value,
        FeatureKind::SameStream(u, v) => (streams[u] == streams[v]) == r.value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};

    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn rule(kind: FeatureKind, value: bool) -> Rule {
        Rule { kind, value }
    }

    #[test]
    fn synthesizes_ordering_rules() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let rules = vec![rule(FeatureKind::Before(a, b), false)]; // b before a
        let t = synthesize(&sp, &rules).expect("satisfiable");
        assert!(satisfies(&sp, &t, &rules));
        sp.validate(&t).unwrap();
        let pos = t.positions(sp.num_ops());
        assert!(pos[b] < pos[a]);
    }

    #[test]
    fn synthesizes_stream_rules() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        for value in [true, false] {
            let rules = vec![rule(FeatureKind::SameStream(a, b), value)];
            let t = synthesize(&sp, &rules).expect("satisfiable");
            assert!(satisfies(&sp, &t, &rules), "value={value}");
        }
    }

    #[test]
    fn contradictory_rules_are_unsatisfiable() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let rules = vec![
            rule(FeatureKind::Before(a, b), true),
            rule(FeatureKind::Before(a, b), false),
        ];
        assert!(synthesize(&sp, &rules).is_none());
    }

    #[test]
    fn dag_constrained_rules_are_unsatisfiable() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let c = sp.op_by_name("c").unwrap();
        // c before a contradicts the DAG edge a -> c.
        let rules = vec![rule(FeatureKind::Before(a, c), false)];
        assert!(synthesize(&sp, &rules).is_none());
    }

    #[test]
    fn empty_ruleset_synthesizes_any_traversal() {
        let sp = space();
        let t = synthesize(&sp, &[]).expect("any traversal works");
        sp.validate(&t).unwrap();
    }

    #[test]
    fn combined_rules_are_respected() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let cer_a = sp.op_by_name("CER-after-a").unwrap();
        let rules = vec![
            rule(FeatureKind::Before(a, b), false),
            rule(FeatureKind::SameStream(a, b), false),
            rule(FeatureKind::Before(b, cer_a), true),
        ];
        let t = synthesize(&sp, &rules).expect("satisfiable");
        assert!(satisfies(&sp, &t, &rules));
    }
}
