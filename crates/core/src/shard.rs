//! Deterministic shard execution and merge: split one exploration run
//! into `N` independently runnable, independently fingerprinted pieces
//! whose merge is bit-identical to the unsharded run.
//!
//! ## Shard determinism policy
//!
//! * **Exhaustive** — the canonical lazy enumeration order is the record
//!   order; shard `i/N` owns the contiguous range
//!   `[total·i/N, total·(i+1)/N)` of it. Concatenating the shards in
//!   index order reproduces the unsharded record sequence exactly.
//! * **Random** — the global dedup loop (rollout `iter` is a pure
//!   function of `(seed, iter)`) is replayed cheaply without simulating,
//!   and shard `i/N` owns the contiguous range of the resulting
//!   *unique-traversal* sequence. Again concatenation is bit-identical
//!   to the unsharded run, and no hash can appear in two shards.
//! * **MCTS** — shards search independently from decorrelated root seeds
//!   ([`dr_mcts::shard_root_seed`]) with [`dr_par::split_budget`]
//!   iteration budgets; each shard's record set is sorted by canonical
//!   hash and the merge is the hash-sorted union. A sharded search is a
//!   *different* (wider) search than the serial one, so MCTS merges are
//!   deterministic and resumable but not bit-identical to the unsharded
//!   trajectory; the bit-identity guarantee applies to the enumerable
//!   strategies.
//!
//! Every measurement is seeded by [`dr_dag::eval_seed`] — a pure
//! function of the traversal — so *which shard* (or which attempt, after
//! a crash) performs a measurement can never change its value.
//!
//! A shard writes its records through the durable [`ResultStore`] under
//! `<store>/shard-<i>-of-<N>/` and, on completion, an atomically
//! published `shard-<i>-of-<N>.manifest.json` recording its identity,
//! record count, fingerprint, and store counters. The manifest is the
//! shard's commit point: a killed worker leaves a store (for resume) but
//! no manifest, so coordinators re-issue exactly the unfinished shards,
//! and resumed shards answer already-simulated traversals from disk.

use crate::explore::{Strategy, EXHAUSTIVE_MASTER_SEED};
use crate::ledger::records_fingerprint;
use crate::pipeline::PipelineConfig;
use crate::resilient::{ResilienceTotals, ResilientEvaluator};
use crate::storestage::StoredEvaluator;
use dr_dag::{eval_seed, DecisionSpace, Traversal};
use dr_fault::FaultConfig;
use dr_mcts::{
    shard_root_seed, Evaluator, ExploredRecord, Mcts, MctsConfig, SearchTelemetry, SimEvaluator,
    TelemetryRow,
};
use dr_obs::events::EventSink;
use dr_obs::{json, Stopwatch};
use dr_par::split_budget;
use dr_sim::{BenchResult, SimError, SimStats, Workload};
use dr_store::{ResultStore, StoreStats};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version tag of the shard manifest format.
pub const SHARD_SCHEMA: &str = "dr-shard/v1";

/// One shard's coordinates: `index` out of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub index: usize,
    /// Total number of shards (≥ 1).
    pub count: usize,
}

impl ShardSpec {
    /// Parses the CLI form `i/N` (e.g. `0/3`), requiring `i < N` and
    /// `N ≥ 1`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("invalid shard '{s}': expected i/N (e.g. 0/3)"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("invalid shard index '{i}'"))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("invalid shard count '{n}'"))?;
        if count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for count {count}"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// The `<i>-of-<N>` tag used in store subdirectory and manifest
    /// names.
    pub fn label(&self) -> String {
        format!("{}-of-{}", self.index, self.count)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The store directory of one shard under the shared store root.
pub fn shard_store_dir(store_root: &Path, spec: ShardSpec) -> PathBuf {
    store_root.join(format!("shard-{}", spec.label()))
}

/// The manifest path of one shard under the shared store root.
pub fn shard_manifest_path(store_root: &Path, spec: ShardSpec) -> PathBuf {
    store_root.join(format!("shard-{}.manifest.json", spec.label()))
}

/// The `(name, seed, iterations)` identity of a strategy, as recorded in
/// manifests and ledger entries (exhaustive is seedless and unbudgeted).
pub fn strategy_identity(strategy: &Strategy) -> (&'static str, u64, u64) {
    match strategy {
        Strategy::Exhaustive => ("exhaustive", 0, 0),
        Strategy::Mcts { iterations, config } => ("mcts", config.seed, *iterations as u64),
        Strategy::Random { iterations, seed } => ("random", *seed, *iterations as u64),
    }
}

/// A completed shard's self-description, published atomically next to
/// its store directory. The manifest doubles as the shard's commit
/// marker: its absence means the shard has not finished.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Scenario name the shard belongs to.
    pub scenario: String,
    /// Strategy name (`exhaustive`, `mcts`, or `random`).
    pub strategy: String,
    /// The search seed (0 for exhaustive).
    pub seed: u64,
    /// The iteration budget of the *unsharded* run (0 for exhaustive).
    pub iterations: u64,
    /// This shard's index.
    pub index: usize,
    /// Total shard count.
    pub count: usize,
    /// Records in the shard's canonical record order.
    pub records: usize,
    /// Ledger-style fingerprint over those records.
    pub fingerprint: u64,
    /// Traversals quarantined by the resilient evaluator (dropped, not
    /// measured).
    pub failures: u64,
    /// Store counters at completion (hits prove resume reuse).
    pub store: StoreStats,
    /// Wall-clock seconds the shard spent.
    pub seconds: f64,
}

impl ShardManifest {
    /// Renders the manifest as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"scenario\":\"{}\",\"strategy\":\"{}\",",
                "\"seed\":{},\"iterations\":{},\"shard\":{{\"index\":{},\"count\":{}}},",
                "\"records\":{},\"fingerprint\":\"{:016x}\",\"failures\":{},",
                "\"store\":{{\"hits\":{},\"misses\":{},\"loaded\":{},\"appended\":{},",
                "\"truncated_bytes\":{}}},\"seconds\":{}}}"
            ),
            SHARD_SCHEMA,
            json::escape(&self.scenario),
            json::escape(&self.strategy),
            self.seed,
            self.iterations,
            self.index,
            self.count,
            self.records,
            self.fingerprint,
            self.failures,
            self.store.hits,
            self.store.misses,
            self.store.loaded,
            self.store.appended,
            self.store.truncated_bytes,
            json::number(self.seconds)
        )
    }

    /// Parses a manifest, rejecting unknown schemas and missing fields.
    pub fn from_json(text: &str) -> Result<ShardManifest, String> {
        let v = json::parse(text).map_err(|e| format!("unparsable manifest: {e}"))?;
        if v.get("schema").and_then(|s| s.as_str()) != Some(SHARD_SCHEMA) {
            return Err(format!("manifest schema is not {SHARD_SCHEMA}"));
        }
        let str_field = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing '{k}'"))
        };
        let u64_path = |p: &[&str]| {
            v.path(p)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("manifest missing '{}'", p.join(".")))
        };
        let fingerprint_hex = str_field("fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16)
            .map_err(|_| format!("invalid fingerprint '{fingerprint_hex}'"))?;
        Ok(ShardManifest {
            scenario: str_field("scenario")?,
            strategy: str_field("strategy")?,
            seed: u64_path(&["seed"])?,
            iterations: u64_path(&["iterations"])?,
            index: u64_path(&["shard", "index"])? as usize,
            count: u64_path(&["shard", "count"])? as usize,
            records: u64_path(&["records"])? as usize,
            fingerprint,
            failures: u64_path(&["failures"])?,
            store: StoreStats {
                hits: u64_path(&["store", "hits"])?,
                misses: u64_path(&["store", "misses"])?,
                loaded: u64_path(&["store", "loaded"])?,
                appended: u64_path(&["store", "appended"])?,
                truncated_bytes: u64_path(&["store", "truncated_bytes"])?,
            },
            seconds: v
                .get("seconds")
                .and_then(|x| x.as_f64())
                .ok_or("manifest missing 'seconds'")?,
        })
    }
}

/// The contiguous `[lo, hi)` range shard `spec` owns out of `total`
/// canonical items (balanced to within one item, exact coverage).
fn slice_bounds(total: usize, spec: ShardSpec) -> (usize, usize) {
    let t = total as u128;
    let n = spec.count as u128;
    let i = spec.index as u128;
    (((t * i) / n) as usize, ((t * (i + 1)) / n) as usize)
}

/// Replays the random strategy's global dedup loop without simulating:
/// the unique-traversal sequence in rollout-discovery order — exactly
/// the unsharded run's record order.
fn random_uniques(space: &DecisionSpace, iterations: usize, seed: u64) -> Vec<Traversal> {
    let mut uniques: Vec<Traversal> = Vec::new();
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    for iter in 0..iterations {
        let t = dr_mcts::random_rollout(space, seed, iter as u64);
        let hash = t.canonical_hash();
        let known = by_hash
            .get(&hash)
            .into_iter()
            .flatten()
            .any(|&u| uniques[u] == t);
        if !known {
            by_hash.entry(hash).or_default().push(uniques.len());
            uniques.push(t);
        }
    }
    uniques
}

/// The deterministic work list shard `spec` owns under `strategy`:
/// `None` for MCTS (which shards by search trajectory, not by a
/// pre-enumerable list). Shard work lists partition the unsharded record
/// sequence: their concatenation in index order is exactly the unsharded
/// order, and no traversal appears in two shards.
pub fn shard_work(
    space: &DecisionSpace,
    strategy: Strategy,
    spec: ShardSpec,
) -> Option<Vec<Traversal>> {
    match strategy {
        Strategy::Exhaustive => {
            let total = space.enumerate().count();
            let (lo, hi) = slice_bounds(total, spec);
            Some(space.enumerate().skip(lo).take(hi - lo).collect())
        }
        Strategy::Random { iterations, seed } => {
            let uniques = random_uniques(space, iterations, seed);
            let (lo, hi) = slice_bounds(uniques.len(), spec);
            Some(uniques[lo..hi].to_vec())
        }
        Strategy::Mcts { .. } => None,
    }
}

/// The evaluation master seed of a work-list strategy (the value
/// [`dr_dag::eval_seed`] folds with each traversal's hash).
fn work_master_seed(strategy: Strategy) -> u64 {
    match strategy {
        Strategy::Exhaustive => EXHAUSTIVE_MASTER_SEED,
        Strategy::Random { seed, .. } => seed,
        Strategy::Mcts { config, .. } => config.seed,
    }
}

/// Heartbeat cadence in milliseconds (`DR_HEARTBEAT_MS`, default 200,
/// minimum 10). Shard workers emit a `heartbeat` event on their
/// `dr-events/v1` stream at least this often while evaluating, and the
/// swarm coordinator declares a worker stalled when its stream goes
/// quiet for much longer than this.
pub fn heartbeat_interval_ms() -> u64 {
    std::env::var("DR_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(200)
        .max(10)
}

/// Time-gated heartbeat emitter over a shard's event stream. Each beat
/// is flushed immediately — a heartbeat that sits in a buffer while the
/// process hangs is worse than none.
struct Heartbeat<'a> {
    sink: Option<&'a EventSink>,
    spec: ShardSpec,
    last: std::time::Instant,
    interval: std::time::Duration,
}

impl<'a> Heartbeat<'a> {
    fn new(sink: Option<&'a EventSink>, spec: ShardSpec) -> Self {
        Heartbeat {
            sink,
            spec,
            last: std::time::Instant::now(),
            interval: std::time::Duration::from_millis(heartbeat_interval_ms()),
        }
    }

    fn emit(&mut self, done: usize, total: usize) {
        if let Some(sink) = self.sink {
            sink.emit(
                "heartbeat",
                &[
                    ("shard", self.spec.index.into()),
                    ("of", self.spec.count.into()),
                    ("done", done.into()),
                    ("total", total.into()),
                ],
            );
            sink.flush();
        }
        self.last = std::time::Instant::now();
    }

    fn maybe(&mut self, done: usize, total: usize) {
        if self.last.elapsed() >= self.interval {
            self.emit(done, total);
        }
    }
}

/// Either evaluator stack a shard runs: plain simulation, or the
/// resilient retry-with-reseed stack when fault injection is active.
enum ShardEval<'a, W: Workload> {
    Plain(SimEvaluator<'a, W>),
    Resilient(ResilientEvaluator<'a, W>),
}

impl<W: Workload> Evaluator for ShardEval<'_, W> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        match self {
            ShardEval::Plain(e) => e.evaluate(t, seed),
            ShardEval::Resilient(e) => e.evaluate(t, seed),
        }
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        match self {
            ShardEval::Plain(e) => e.sim_stats(),
            ShardEval::Resilient(e) => e.sim_stats(),
        }
    }
}

/// Everything one shard run produced.
#[derive(Debug, Clone)]
pub struct ShardRunOutcome {
    /// The shard's records in its canonical order.
    pub records: Vec<ExploredRecord>,
    /// The published manifest (already written to disk).
    pub manifest: ShardManifest,
    /// Path of the published manifest.
    pub manifest_path: PathBuf,
}

fn store_io_err(e: std::io::Error) -> SimError {
    SimError::Faulted {
        detail: format!("result store: {e}"),
    }
}

/// Runs one shard to completion: opens (or resumes) its durable store,
/// evaluates exactly its deterministic share of the strategy — answering
/// already-committed traversals from disk — compacts the store (the
/// atomic-rotation path), and atomically publishes the manifest. The
/// `scenario` string only labels the manifest; all determinism flows
/// from `space`/`strategy`.
#[allow(clippy::too_many_arguments)]
pub fn run_shard<W: Workload + Sync>(
    scenario: &str,
    space: &DecisionSpace,
    workload: &W,
    platform: &dr_sim::Platform,
    strategy: Strategy,
    spec: ShardSpec,
    cfg: &PipelineConfig,
    store_root: &Path,
    events: Option<&EventSink>,
) -> Result<ShardRunOutcome, SimError> {
    let sw = Stopwatch::start();
    let events = events.filter(|s| s.is_enabled());
    let store =
        Arc::new(ResultStore::open(&shard_store_dir(store_root, spec)).map_err(store_io_err)?);
    let faults = if cfg.faults.is_active() {
        cfg.faults
    } else {
        match FaultConfig::from_env() {
            Ok(Some(f)) => f,
            Ok(None) => FaultConfig::clean(),
            Err(msg) => {
                return Err(SimError::Faulted {
                    detail: format!("invalid DR_FAULTS: {msg}"),
                })
            }
        }
    };
    let totals = Arc::new(ResilienceTotals::default());
    let resilient = faults.is_active();
    let inner = if resilient {
        // DR_RETRY_* knobs let a coordinator (or a chaos test) stretch
        // one worker's retry schedule without recompiling.
        let (max_retries, backoff_base_ms, backoff_cap_ms) =
            crate::resilient::retry_knobs_from_env();
        ShardEval::Resilient(
            ResilientEvaluator::new(space, workload, platform, cfg.bench, faults, totals.clone())
                .with_max_retries(max_retries)
                .with_backoff(backoff_base_ms, backoff_cap_ms),
        )
    } else {
        ShardEval::Plain(SimEvaluator::new(space, workload, platform, cfg.bench))
    };
    let mut eval = StoredEvaluator::new(inner, Some(store.clone()));
    let mut beat = Heartbeat::new(events, spec);
    let mut failures = 0u64;
    let records = match strategy {
        Strategy::Mcts { iterations, config } => {
            let budget = split_budget(iterations, spec.count)[spec.index];
            let mut config = MctsConfig {
                seed: shard_root_seed(config.seed, spec.index, spec.count),
                ..config
            };
            if resilient && config.max_failures == 0 {
                config.max_failures = budget;
            }
            beat.emit(0, budget);
            let mut mcts = Mcts::new(space, eval, config);
            // Chunked search so long budgets still beat regularly.
            let mut done = 0usize;
            while done < budget {
                let step = (budget - done).min(16);
                mcts.run(step)?;
                done += step;
                beat.maybe(done, budget);
                if mcts.is_exhausted() {
                    break;
                }
            }
            failures = mcts.failures() as u64;
            // The shard's canonical record order: its store contents
            // (first commit wins) sorted by canonical hash.
            let mut recs: Vec<ExploredRecord> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (hash, r) in store.records_in_order() {
                if seen.insert(hash) {
                    recs.push(ExploredRecord {
                        traversal: r.traversal,
                        result: r.result,
                    });
                }
            }
            recs.sort_by_key(|r| r.traversal.canonical_hash());
            recs
        }
        _ => {
            let work = shard_work(space, strategy, spec).expect("work-list strategy");
            let master = work_master_seed(strategy);
            beat.emit(0, work.len());
            let mut recs = Vec::with_capacity(work.len());
            for (done, t) in work.iter().enumerate() {
                match eval.evaluate(t, eval_seed(master, t)) {
                    Ok(result) => recs.push(ExploredRecord {
                        traversal: t.clone(),
                        result,
                    }),
                    // Mirror the unsharded resilient engine: quarantine
                    // instead of aborting when fault injection is active.
                    Err(_) if resilient => failures += 1,
                    Err(e) => return Err(e),
                }
                beat.maybe(done + 1, work.len());
            }
            recs
        }
    };
    store.compact().map_err(store_io_err)?;
    let (strategy_name, seed, iterations) = strategy_identity(&strategy);
    let manifest = ShardManifest {
        scenario: scenario.to_string(),
        strategy: strategy_name.to_string(),
        seed,
        iterations,
        index: spec.index,
        count: spec.count,
        records: records.len(),
        fingerprint: records_fingerprint(&records),
        failures,
        store: store.stats(),
        seconds: sw.elapsed(),
    };
    let manifest_path = shard_manifest_path(store_root, spec);
    write_atomic(&manifest_path, manifest.to_json().as_bytes()).map_err(store_io_err)?;
    if let Some(sink) = events {
        sink.emit(
            "shard-done",
            &[
                ("shard", spec.index.into()),
                ("of", spec.count.into()),
                ("records", records.len().into()),
                ("store_hits", manifest.store.hits.into()),
                ("seconds", manifest.seconds.into()),
            ],
        );
        sink.flush();
    }
    Ok(ShardRunOutcome {
        records,
        manifest,
        manifest_path,
    })
}

/// Writes `bytes` to `path` atomically (temp file + rename), creating
/// parent directories as needed.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    let tmp = PathBuf::from(os);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The merged result of a completed shard set.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// All shards' records in the canonical merged order (for the
    /// enumerable strategies: bit-identical to the unsharded run).
    pub records: Vec<ExploredRecord>,
    /// Ledger-style fingerprint over the merged records.
    pub fingerprint: u64,
    /// Number of shards merged.
    pub shards: usize,
    /// Store hit/miss totals summed over the shard manifests.
    pub store: StoreStats,
    /// Traversals quarantined across all shards.
    pub failures: u64,
    /// Wall-clock shard seconds summed over the manifests (total
    /// compute spent exploring, across all workers).
    pub seconds: f64,
    /// The slowest single shard's wall-clock seconds — the critical
    /// path. Swarm workers run concurrently, so this, not the sum, is
    /// the merged run's "explore" phase cost comparable to an unsharded
    /// run's wall-clock.
    pub critical_seconds: f64,
}

/// Synthesizes per-record search telemetry for a merged record sequence
/// (one iteration per record, running best/worst), mirroring the
/// exhaustive strategy's telemetry shape.
pub fn records_telemetry(records: &[ExploredRecord]) -> SearchTelemetry {
    let mut telemetry = SearchTelemetry::new();
    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    for (i, r) in records.iter().enumerate() {
        best = best.min(r.result.time());
        worst = worst.max(r.result.time());
        telemetry.push(TelemetryRow {
            iteration: i as u64 + 1,
            unique_traversals: i + 1,
            best_time: best,
            worst_time: worst,
            tree_nodes: 0,
            max_depth: 0,
            rollout_len: r.traversal.steps.len(),
        });
    }
    telemetry
}

/// Loads every `shard-*.manifest.json` under `store_root`.
fn load_manifests(store_root: &Path) -> Result<Vec<ShardManifest>, String> {
    let mut manifests = Vec::new();
    let entries = std::fs::read_dir(store_root)
        .map_err(|e| format!("cannot read shard directory {}: {e}", store_root.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read shard directory entry: {e}"))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with("shard-") && name.ends_with(".manifest.json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
        let m = ShardManifest::from_json(&text)
            .map_err(|e| format!("{}: {e}", entry.path().display()))?;
        manifests.push(m);
    }
    manifests.sort_by_key(|m| m.index);
    Ok(manifests)
}

/// Validates a shard set's manifests and merges its record sets.
///
/// Checks performed, in order: manifest identity consistency (scenario,
/// strategy, seed, iterations, shard count must agree across manifests
/// and with the caller's arguments), exact index coverage (a missing
/// index is a **gap**, a repeated one an **overlap**), per-shard store
/// completeness and fingerprint match (the store must reproduce exactly
/// the manifest's committed record sequence), and cross-shard
/// **duplicate-hash conflicts** (the same canonical hash committed by
/// two shards — impossible for partitioned strategies unless stores were
/// corrupted or mixed; tolerated for MCTS only when the measurements are
/// bit-identical).
pub fn merge_shards(
    store_root: &Path,
    scenario: &str,
    space: &DecisionSpace,
    strategy: Strategy,
) -> Result<MergeOutcome, String> {
    let manifests = load_manifests(store_root)?;
    if manifests.is_empty() {
        return Err(format!(
            "no shard manifests found in {}",
            store_root.display()
        ));
    }
    let (strategy_name, seed, iterations) = strategy_identity(&strategy);
    let count = manifests[0].count;
    for m in &manifests {
        if m.scenario != scenario {
            return Err(format!(
                "shard {}/{} belongs to scenario '{}', expected '{scenario}'",
                m.index, m.count, m.scenario
            ));
        }
        if m.strategy != strategy_name || m.seed != seed || m.iterations != iterations {
            return Err(format!(
                "shard {}/{} ran {} seed {} iterations {}, expected {} seed {} iterations {}",
                m.index, m.count, m.strategy, m.seed, m.iterations, strategy_name, seed, iterations
            ));
        }
        if m.count != count {
            return Err(format!(
                "inconsistent shard counts: found both {} and {}",
                count, m.count
            ));
        }
    }
    // Exact coverage: indices 0..count, each exactly once.
    let mut present = vec![0usize; count];
    for m in &manifests {
        if m.index >= count {
            return Err(format!(
                "shard index {} out of range for count {count}",
                m.index
            ));
        }
        present[m.index] += 1;
    }
    let gaps: Vec<String> = present
        .iter()
        .enumerate()
        .filter(|(_, &c)| c == 0)
        .map(|(i, _)| format!("{i}/{count}"))
        .collect();
    if !gaps.is_empty() {
        return Err(format!("shard gap: missing {}", gaps.join(", ")));
    }
    let overlaps: Vec<String> = present
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 1)
        .map(|(i, _)| format!("{i}/{count}"))
        .collect();
    if !overlaps.is_empty() {
        return Err(format!(
            "shard overlap: duplicate manifests for {}",
            overlaps.join(", ")
        ));
    }
    // Reload each shard's records from its store in canonical order and
    // re-verify the manifest fingerprint from the bytes on disk.
    let is_mcts = matches!(strategy, Strategy::Mcts { .. });
    let mut merged: Vec<ExploredRecord> = Vec::new();
    let mut owner: HashMap<u64, (usize, u64)> = HashMap::new();
    let mut store_totals = StoreStats::default();
    let mut failures = 0u64;
    let mut seconds = 0.0;
    let mut critical_seconds = 0.0f64;
    for m in &manifests {
        let spec = ShardSpec {
            index: m.index,
            count,
        };
        let store = ResultStore::open(&shard_store_dir(store_root, spec))
            .map_err(|e| format!("shard {spec}: cannot open store: {e}"))?;
        let records: Vec<ExploredRecord> = if is_mcts {
            let mut recs: Vec<ExploredRecord> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (hash, r) in store.records_in_order() {
                if seen.insert(hash) {
                    recs.push(ExploredRecord {
                        traversal: r.traversal,
                        result: r.result,
                    });
                }
            }
            recs.sort_by_key(|r| r.traversal.canonical_hash());
            recs
        } else {
            let work = shard_work(space, strategy, spec).expect("work-list strategy");
            let mut recs = Vec::with_capacity(work.len());
            for t in work {
                if let Some(result) = store.lookup(&t) {
                    recs.push(ExploredRecord {
                        traversal: t,
                        result,
                    });
                }
                // A missing traversal is either a quarantined failure
                // (legitimate, counted in the manifest) or an incomplete
                // store; the count and fingerprint checks below tell
                // them apart.
            }
            recs
        };
        if records.len() != m.records {
            return Err(format!(
                "shard {spec} incomplete: store reproduces {} of {} committed records \
                 (re-run the shard to resume it)",
                records.len(),
                m.records
            ));
        }
        let fp = records_fingerprint(&records);
        if fp != m.fingerprint {
            return Err(format!(
                "shard {spec} fingerprint mismatch: store yields {fp:016x}, manifest says \
                 {:016x} (store corrupt or from a different run)",
                m.fingerprint
            ));
        }
        for r in &records {
            let hash = r.traversal.canonical_hash();
            let bits = r.result.time().to_bits();
            if let Some(&(other, other_bits)) = owner.get(&hash) {
                if !is_mcts {
                    return Err(format!(
                        "duplicate hash {hash:016x} in shards {other}/{count} and {}/{count}: \
                         partitioned strategies must be disjoint",
                        m.index
                    ));
                }
                if other_bits != bits {
                    return Err(format!(
                        "conflicting measurements for hash {hash:016x} between shards \
                         {other}/{count} and {}/{count}",
                        m.index
                    ));
                }
                continue; // identical MCTS duplicate: keep the first
            }
            owner.insert(hash, (m.index, bits));
            merged.push(r.clone());
        }
        store_totals.hits += m.store.hits;
        store_totals.misses += m.store.misses;
        store_totals.loaded += m.store.loaded;
        store_totals.appended += m.store.appended;
        store_totals.truncated_bytes += m.store.truncated_bytes;
        failures += m.failures;
        seconds += m.seconds;
        critical_seconds = critical_seconds.max(m.seconds);
    }
    if is_mcts {
        merged.sort_by_key(|r| r.traversal.canonical_hash());
    }
    let fingerprint = records_fingerprint(&merged);
    Ok(MergeOutcome {
        records: merged,
        fingerprint,
        shards: count,
        store: store_totals,
        failures,
        seconds,
        critical_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::{Platform, TableWorkload};

    fn setup() -> (DecisionSpace, TableWorkload, Platform) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 5e-4)
            .cost_all("b", 5e-4)
            .cost_all("c", 1e-5);
        let platform = Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        (space, w, platform)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dr-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("0/3").unwrap(),
            ShardSpec { index: 0, count: 3 }
        );
        assert_eq!(
            ShardSpec::parse("2/3").unwrap(),
            ShardSpec { index: 2, count: 3 }
        );
        for bad in ["3/3", "1/0", "x/2", "1-2", "2"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn work_lists_partition_the_unsharded_order() {
        let (space, _, _) = setup();
        for strategy in [
            Strategy::Exhaustive,
            Strategy::Random {
                iterations: 40,
                seed: 9,
            },
        ] {
            let full = shard_work(&space, strategy, ShardSpec { index: 0, count: 1 }).unwrap();
            for count in 1..=5usize {
                let mut concat = Vec::new();
                for index in 0..count {
                    concat
                        .extend(shard_work(&space, strategy, ShardSpec { index, count }).unwrap());
                }
                assert_eq!(concat, full, "{} N={count}", strategy.name());
            }
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = ShardManifest {
            scenario: "spmv".into(),
            strategy: "random".into(),
            seed: 7,
            iterations: 64,
            index: 1,
            count: 3,
            records: 12,
            fingerprint: 0xDEAD_BEEF_0123_4567,
            failures: 1,
            store: StoreStats {
                hits: 3,
                misses: 9,
                loaded: 3,
                appended: 9,
                truncated_bytes: 17,
            },
            seconds: 1.5,
        };
        let js = m.to_json();
        json::validate(&js).unwrap();
        assert_eq!(ShardManifest::from_json(&js).unwrap(), m);
        assert!(ShardManifest::from_json("{\"schema\":\"nope\"}").is_err());
    }

    #[test]
    fn sharded_run_merges_bit_identical_to_the_single_shard_run() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig::quick();
        let strategy = Strategy::Random {
            iterations: 30,
            seed: 4,
        };
        // Unsharded reference: one shard covering everything.
        let ref_dir = scratch("merge-ref");
        let reference = run_shard(
            "test",
            &space,
            &w,
            &platform,
            strategy,
            ShardSpec { index: 0, count: 1 },
            &cfg,
            &ref_dir,
            None,
        )
        .unwrap();
        // Three shards, run in arbitrary order, then merged.
        let dir = scratch("merge-3");
        for index in [2usize, 0, 1] {
            run_shard(
                "test",
                &space,
                &w,
                &platform,
                strategy,
                ShardSpec { index, count: 3 },
                &cfg,
                &dir,
                None,
            )
            .unwrap();
        }
        let merged = merge_shards(&dir, "test", &space, strategy).unwrap();
        assert_eq!(merged.shards, 3);
        assert_eq!(merged.records.len(), reference.records.len());
        for (a, b) in merged.records.iter().zip(&reference.records) {
            assert_eq!(a.traversal, b.traversal);
            assert_eq!(a.result, b.result);
        }
        assert_eq!(merged.fingerprint, reference.manifest.fingerprint);
        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rerun_answers_from_the_store_and_merge_detects_gaps() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig::quick();
        let strategy = Strategy::Exhaustive;
        let dir = scratch("resume");
        let spec = ShardSpec { index: 0, count: 2 };
        let cold = run_shard(
            "test", &space, &w, &platform, strategy, spec, &cfg, &dir, None,
        )
        .unwrap();
        assert_eq!(cold.manifest.store.hits, 0);
        assert!(cold.manifest.store.appended > 0);
        // Re-running the same shard simulates nothing.
        let warm = run_shard(
            "test", &space, &w, &platform, strategy, spec, &cfg, &dir, None,
        )
        .unwrap();
        assert_eq!(warm.manifest.fingerprint, cold.manifest.fingerprint);
        assert_eq!(warm.manifest.store.appended, 0);
        assert_eq!(warm.manifest.store.hits as usize, warm.records.len());
        // Shard 1/2 never ran: the merge names the gap.
        let err = merge_shards(&dir, "test", &space, strategy).unwrap_err();
        assert!(err.contains("gap") && err.contains("1/2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_identity_mismatches() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig::quick();
        let strategy = Strategy::Random {
            iterations: 20,
            seed: 1,
        };
        let dir = scratch("identity");
        for index in 0..2 {
            run_shard(
                "test",
                &space,
                &w,
                &platform,
                strategy,
                ShardSpec { index, count: 2 },
                &cfg,
                &dir,
                None,
            )
            .unwrap();
        }
        // Wrong seed.
        let err = merge_shards(
            &dir,
            "test",
            &space,
            Strategy::Random {
                iterations: 20,
                seed: 2,
            },
        )
        .unwrap_err();
        assert!(err.contains("seed"), "{err}");
        // Wrong scenario.
        let err = merge_shards(&dir, "other", &space, strategy).unwrap_err();
        assert!(err.contains("scenario"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_detects_torn_then_incomplete_stores() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig::quick();
        let strategy = Strategy::Exhaustive;
        let dir = scratch("torn");
        for index in 0..2 {
            run_shard(
                "test",
                &space,
                &w,
                &platform,
                strategy,
                ShardSpec { index, count: 2 },
                &cfg,
                &dir,
                None,
            )
            .unwrap();
        }
        // Tear the tail off shard 1's segment: recovery drops its final
        // record, so the merge reports the shard as incomplete.
        let seg =
            shard_store_dir(&dir, ShardSpec { index: 1, count: 2 }).join(dr_store::SEGMENT_FILE);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let err = merge_shards(&dir, "test", &space, strategy).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
        // Resuming the shard repairs it (only the torn record re-runs),
        // and the merge then succeeds.
        let resumed = run_shard(
            "test",
            &space,
            &w,
            &platform,
            strategy,
            ShardSpec { index: 1, count: 2 },
            &cfg,
            &dir,
            None,
        )
        .unwrap();
        assert!(resumed.manifest.store.hits > 0, "resume reuses the store");
        assert_eq!(
            resumed.manifest.store.appended, 1,
            "only the torn record re-ran"
        );
        let merged = merge_shards(&dir, "test", &space, strategy).unwrap();
        let full = run_shard(
            "test",
            &space,
            &w,
            &platform,
            strategy,
            ShardSpec { index: 0, count: 1 },
            &cfg,
            &scratch("torn-ref"),
            None,
        )
        .unwrap();
        assert_eq!(merged.fingerprint, full.manifest.fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mcts_shards_merge_deterministically() {
        let (space, w, platform) = setup();
        let cfg = PipelineConfig::quick();
        let strategy = Strategy::Mcts {
            iterations: 24,
            config: MctsConfig::default(),
        };
        let dir_a = scratch("mcts-a");
        let dir_b = scratch("mcts-b");
        for dir in [&dir_a, &dir_b] {
            for index in 0..2 {
                run_shard(
                    "test",
                    &space,
                    &w,
                    &platform,
                    strategy,
                    ShardSpec { index, count: 2 },
                    &cfg,
                    dir,
                    None,
                )
                .unwrap();
            }
        }
        let a = merge_shards(&dir_a, "test", &space, strategy).unwrap();
        let b = merge_shards(&dir_b, "test", &space, strategy).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "sharded MCTS is reproducible");
        assert!(!a.records.is_empty());
        // Hash-sorted and duplicate-free.
        let hashes: Vec<u64> = a
            .records
            .iter()
            .map(|r| r.traversal.canonical_hash())
            .collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(hashes, sorted);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
