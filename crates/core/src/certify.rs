//! Static rule certification: proving that following a mined ruleset
//! cannot produce a schedule the linter rejects.
//!
//! The paper's contract is that an implementor who follows every rule of
//! a fast-class ruleset lands in the fast performance class. This module
//! checks the *safety* half of that contract statically: for each mined
//! ruleset, the incremental space-level linter walks exactly the
//! schedules satisfying the ruleset (the rules act as a prefix filter on
//! the decision-space walk) and verifies each one is free of
//! error-severity diagnostics — races, deadlocks, malformed schedules.
//! A ruleset whose every satisfying schedule lints clean is *certified*;
//! the first offending schedule otherwise becomes the counterexample.

use crate::synthesize::violates;
use dr_dag::DecisionSpace;
use dr_lint::{lint_space_incremental, CommTopology, LintCounters, SpaceLintOptions};
use dr_ml::RuleSet;

/// Certification verdict of one mined ruleset.
#[derive(Debug, Clone)]
pub struct RulesetCertificate {
    /// Performance class of the ruleset's leaf (0 = fastest).
    pub class: usize,
    /// Training samples behind the ruleset.
    pub samples: usize,
    /// Whether the leaf held a single class.
    pub pure: bool,
    /// Human-readable conditions, root-first.
    pub predicates: Vec<String>,
    /// Schedules satisfying the ruleset that were linted.
    pub schedules_checked: u64,
    /// Whether the walk stopped at the schedule cap (an inconclusive,
    /// therefore uncertified, verdict).
    pub truncated: bool,
    /// Error-severity diagnostics across the satisfying schedules.
    pub errors: u64,
    /// Warning-severity diagnostics (do not block certification).
    pub warnings: u64,
    /// Happens-before races among the errors.
    pub races: u64,
    /// MPI deadlocks among the errors.
    pub deadlocks: u64,
    /// Certified: every satisfying schedule was checked and none had an
    /// error-severity diagnostic.
    pub certified: bool,
    /// The first offending schedule's first error, rendered (`None` when
    /// certified).
    pub first_counterexample: Option<String>,
}

/// Outcome of certifying a whole mined ruleset collection.
#[derive(Debug, Clone)]
pub struct Certification {
    /// Number of performance classes in the mining.
    pub classes: usize,
    /// One certificate per mined ruleset, in mining order.
    pub rulesets: Vec<RulesetCertificate>,
    /// Whether every fast-class (class 0) ruleset is certified — the
    /// CI gate. Vacuously true when the mining produced no fast-class
    /// ruleset.
    pub all_fast_certified: bool,
}

impl Certification {
    /// Certificates of uncertified fast-class rulesets (the gate's
    /// offenders).
    pub fn uncertified_fast(&self) -> impl Iterator<Item = &RulesetCertificate> {
        self.rulesets
            .iter()
            .filter(|c| c.class == 0 && !c.certified)
    }
}

/// Certifies every ruleset in `rulesets` against `space`: for each, the
/// incremental linter walks the schedules satisfying the ruleset's
/// conditions (up to `max_schedules`; `0` = unlimited) and checks them
/// for error-severity diagnostics. Pass a [`CommTopology`] to include
/// deadlock detection — without one only happens-before and redundancy
/// analyses run.
pub fn certify_rulesets(
    space: &DecisionSpace,
    topo: Option<&CommTopology>,
    rulesets: &[RuleSet],
    classes: usize,
    max_schedules: u64,
) -> Certification {
    let certificates: Vec<RulesetCertificate> = rulesets
        .iter()
        .map(|rs| certify_one(space, topo, rs, max_schedules))
        .collect();
    let all_fast_certified = certificates
        .iter()
        .filter(|c| c.class == 0)
        .all(|c| c.certified);
    Certification {
        classes,
        rulesets: certificates,
        all_fast_certified,
    }
}

fn certify_one(
    space: &DecisionSpace,
    topo: Option<&CommTopology>,
    rs: &RuleSet,
    max_schedules: u64,
) -> RulesetCertificate {
    let mut counters = LintCounters::default();
    let mut first_counterexample: Option<String> = None;
    let rules = &rs.rules;
    let stats = lint_space_incremental(
        space,
        topo,
        SpaceLintOptions {
            max_schedules,
            prune_deadlocks: false,
        },
        Some(&mut |prefix, p| !violates(rules, prefix, p)),
        &mut |i, _prefix, report| {
            if first_counterexample.is_none() {
                if let Some(d) = report.errors().next() {
                    first_counterexample = Some(format!("schedule #{i}: {}", d.render()));
                }
            }
            counters.absorb(report);
        },
    );
    let certified = counters.errors == 0 && !stats.truncated;
    RulesetCertificate {
        class: rs.class,
        samples: rs.samples,
        pure: rs.pure,
        predicates: rs.rules.iter().map(|r| r.phrase(space)).collect(),
        schedules_checked: stats.schedules,
        truncated: stats.truncated,
        errors: counters.errors,
        warnings: counters.warnings,
        races: counters.races,
        deadlocks: counters.deadlocks,
        certified,
        first_counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CommKey, CostKey, DagBuilder, OpSpec};
    use dr_ml::{FeatureKind, Rule};

    fn kernel_space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn ruleset(rules: Vec<Rule>, class: usize) -> RuleSet {
        RuleSet {
            rules,
            class,
            samples: 10,
            class_counts: vec![10],
            pure: true,
        }
    }

    #[test]
    fn clean_space_certifies_every_ruleset() {
        let sp = kernel_space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let sets = vec![
            ruleset(vec![], 0),
            ruleset(
                vec![Rule {
                    kind: FeatureKind::Before(a, b),
                    value: true,
                }],
                1,
            ),
        ];
        let cert = certify_rulesets(&sp, None, &sets, 2, 0);
        assert_eq!(cert.classes, 2);
        assert!(cert.all_fast_certified);
        for c in &cert.rulesets {
            assert!(c.certified, "{:?}", c.first_counterexample);
            assert_eq!(c.errors, 0);
            assert!(!c.truncated);
            assert!(c.first_counterexample.is_none());
        }
        // The empty ruleset admits the whole space; the constrained one
        // admits a strict subset.
        assert_eq!(
            cert.rulesets[0].schedules_checked as u128,
            sp.count_traversals()
        );
        assert!(cert.rulesets[1].schedules_checked < cert.rulesets[0].schedules_checked);
        assert!(cert.rulesets[1].schedules_checked > 0);
        assert_eq!(cert.rulesets[1].predicates.len(), 1);
    }

    #[test]
    fn deadlocking_subset_fails_certification_with_a_counterexample() {
        // Rendezvous exchange: orders where WaitSends precedes the
        // remote PostRecvs deadlock. A ruleset that *requires* the wait
        // before the post admits only deadlocked schedules.
        let key = CommKey::new("x");
        let mut b = DagBuilder::new();
        let ps = b.add("ps", OpSpec::PostSends(key.clone()));
        let pr = b.add("pr", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("ws", OpSpec::WaitSends(key.clone()));
        let wr = b.add("wr", OpSpec::WaitRecvs(key.clone()));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let mut topo = CommTopology::new(2).with_eager_threshold(1024);
        topo.all_to_all(key, 1 << 20);
        let ws_op = sp.op_by_name("ws").unwrap();
        let pr_op = sp.op_by_name("pr").unwrap();
        let doomed = ruleset(
            vec![Rule {
                kind: FeatureKind::Before(pr_op, ws_op),
                value: false, // ws before pr: every completion deadlocks
            }],
            0,
        );
        let safe = ruleset(
            vec![Rule {
                kind: FeatureKind::Before(pr_op, ws_op),
                value: true,
            }],
            0,
        );
        let cert = certify_rulesets(&sp, Some(&topo), &[doomed, safe], 1, 0);
        assert!(!cert.all_fast_certified);
        let d = &cert.rulesets[0];
        assert!(!d.certified);
        assert!(d.deadlocks > 0);
        assert!(d
            .first_counterexample
            .as_deref()
            .is_some_and(|s| s.contains("MPI")));
        let s = &cert.rulesets[1];
        assert!(s.certified, "{:?}", s.first_counterexample);
        assert_eq!(cert.uncertified_fast().count(), 1);
    }

    #[test]
    fn truncated_walks_are_not_certified() {
        let sp = kernel_space();
        let sets = vec![ruleset(vec![], 0)];
        let cert = certify_rulesets(&sp, None, &sets, 1, 1);
        assert!(cert.rulesets[0].truncated);
        assert!(!cert.rulesets[0].certified);
        assert!(!cert.all_fast_certified);
    }
}
