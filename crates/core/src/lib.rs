//! # dr-core — the end-to-end CUDA+MPI design-rule pipeline
//!
//! Facade over the reproduction's substrates, implementing the paper's
//! full system (Fig. 2): a DAG of CUDA and MPI operations defines the
//! design space; Monte-Carlo tree search (or an exhaustive/random sweep)
//! collects `(sequence, time)` samples on the platform simulator; class
//! labels come from convolution + peak detection over the sorted times;
//! pairwise ordering/stream features feed a CART decision tree; and the
//! tree's root-to-leaf paths become human-readable design rules.
//!
//! ```
//! use dr_core::{run_pipeline, PipelineConfig, Strategy};
//! use dr_spmv::SpmvScenario;
//!
//! let sc = SpmvScenario::small(42);
//! let result = run_pipeline(
//!     &sc.space,
//!     &sc.workload,
//!     &sc.platform,
//!     Strategy::Mcts { iterations: 16, config: Default::default() },
//!     &PipelineConfig::quick(),
//! )
//! .unwrap();
//! assert!(!result.rulesets.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod certify;
mod compare;
mod evaluate;
mod explore;
mod ledger;
mod lintstage;
mod multi_input;
mod pipeline;
mod report;
mod resilient;
mod runs;
mod shard;
mod storestage;
mod synthesize;
mod tracestage;
mod watch;

pub use certify::{certify_rulesets, Certification, RulesetCertificate};
pub use compare::{
    compare_bench, compare_fleet, compare_ledgers, is_bench_file, is_fleet_file, load_bench,
    load_fleet, load_ledger, CompareOptions, CompareReport, BENCH_SCHEMA,
};
pub use evaluate::{labeling_accuracy, AccuracyReport};
pub use explore::{
    events_rate, explore, explore_instrumented, explore_parallel, explore_parallel_backend,
    explore_parallel_resilient, explore_parallel_resilient_traced,
    explore_parallel_resilient_watched, explore_parallel_resilient_watched_backend,
    explore_parallel_traced, explore_parallel_watched, explore_parallel_watched_backend,
    ExploreOutput, SearchBackend, Strategy,
};
pub use ledger::{
    append_entry, ledger_dir_from_env, ledger_entry_json, records_fingerprint, LedgerContext,
    LEDGER_FILE, LEDGER_SCHEMA,
};
pub use lintstage::{
    apply_fault_plan, lint_space, lint_space_watched, topology_from_workload, LintTotals,
    LintingEvaluator, SpaceLint,
};
pub use multi_input::{mine_rules_multi, InputFeature, InputRun, MultiInputResult};
pub use pipeline::{
    mine_rules, mine_rules_timed, run_pipeline, run_pipeline_instrumented, run_pipeline_stored,
    run_pipeline_traced, run_pipeline_watched, InstrumentedRun, PipelineConfig, PipelineResult,
};
pub use report::{
    LintSummary, MiningSummary, Provenance, ResilienceSummary, RunReport, SearchSummary,
};
pub use resilient::{
    backoff_delay_ms, retry_knobs_from_env, retry_seed, ResilienceTotals, ResilientEvaluator,
    DEFAULT_BACKOFF_BASE_MS, DEFAULT_BACKOFF_CAP_MS, DEFAULT_MAX_RETRIES, WATCHDOG_MAX_STEPS,
};
pub use runs::{
    diff_entries, find_entry, select, show_entry, summary_line, trend_lines, RunFilter,
};
pub use shard::{
    heartbeat_interval_ms, merge_shards, records_telemetry, run_shard, shard_manifest_path,
    shard_store_dir, shard_work, strategy_identity, MergeOutcome, ShardManifest, ShardRunOutcome,
    ShardSpec, SHARD_SCHEMA,
};
pub use storestage::StoredEvaluator;
pub use synthesize::{satisfies, synthesize};
pub use tracestage::TracingEvaluator;
pub use watch::{EvalWatch, WatchedEvaluator};
