//! Row-wise partitioning of a distributed SpMV (paper Fig. 3b).
//!
//! Contiguous rows of `A`, `x`, and `y` are divided evenly across ranks.
//! Each rank's product splits into a *local* part `y_L = A_L x_L` over the
//! columns it owns and a *remote* part `y_R = A_R x_R` over columns owned
//! by other ranks; `x_R` is assembled from the peers' `x` entries that
//! appear as non-zero columns in `A_R`.

use crate::matrix::Csr;
use std::ops::Range;

/// Even contiguous partition of `n` indices over `ranks` ranks (the first
/// `n % ranks` ranks take one extra).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Total number of rows/entries.
    pub n: usize,
    /// Number of ranks.
    pub ranks: usize,
}

impl Partition {
    /// Creates a partition; `ranks` must be in `1..=n`.
    pub fn new(n: usize, ranks: usize) -> Self {
        assert!(ranks >= 1 && ranks <= n, "need 1 <= ranks <= n");
        Partition { n, ranks }
    }

    /// The index range owned by `rank`.
    pub fn range(&self, rank: usize) -> Range<usize> {
        let base = self.n / self.ranks;
        let extra = self.n % self.ranks;
        let lo = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        lo..lo + len
    }

    /// The rank owning global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n);
        let base = self.n / self.ranks;
        let extra = self.n % self.ranks;
        let split = extra * (base + 1);
        if i < split {
            i / (base + 1)
        } else {
            extra + (i - split) / base
        }
    }
}

/// One rank's share of the distributed SpMV.
#[derive(Debug, Clone)]
pub struct RankMatrix {
    /// This rank's id.
    pub rank: usize,
    /// Global rows (and local x entries) owned by this rank.
    pub rows: Range<usize>,
    /// Local block: columns re-indexed to `0..rows.len()`.
    pub a_l: Csr,
    /// Remote block: columns re-indexed to the compact remote ordering
    /// (concatenation of `recv_lists` buffers).
    pub a_r: Csr,
    /// Per source rank: the ascending global x indices this rank receives.
    /// Ordered by source rank; concatenated, they define the compact
    /// column space of `a_r`.
    pub recv_lists: Vec<(usize, Vec<usize>)>,
    /// Per destination rank: the local x indices this rank packs and
    /// sends. Mirror image of the destinations' `recv_lists`.
    pub send_lists: Vec<(usize, Vec<usize>)>,
}

impl RankMatrix {
    /// Total remote entries received (the length of `x_R`).
    pub fn num_recv(&self) -> usize {
        self.recv_lists.iter().map(|(_, l)| l.len()).sum()
    }

    /// Total local entries packed and sent.
    pub fn num_send(&self) -> usize {
        self.send_lists.iter().map(|(_, l)| l.len()).sum()
    }
}

/// A complete distributed decomposition of one sparse matrix.
#[derive(Debug, Clone)]
pub struct DistributedSpmv {
    /// The row partition.
    pub partition: Partition,
    /// Per-rank matrices and communication lists.
    pub ranks: Vec<RankMatrix>,
}

impl DistributedSpmv {
    /// Decomposes square matrix `a` across `num_ranks` ranks.
    pub fn new(a: &Csr, num_ranks: usize) -> Self {
        assert_eq!(a.nrows, a.ncols, "distributed SpMV assumes a square matrix");
        let partition = Partition::new(a.nrows, num_ranks);

        // First pass: per rank, split entries into local/remote and
        // collect the remote column sets grouped by owner.
        struct Draft {
            rows: Range<usize>,
            local: Vec<(usize, usize, f64)>,
            remote: Vec<(usize, usize, f64)>, // (local row, global col, val)
            recv_lists: Vec<(usize, Vec<usize>)>,
        }
        let mut drafts: Vec<Draft> = Vec::with_capacity(num_ranks);
        for rank in 0..num_ranks {
            let rows = partition.range(rank);
            let mut local = Vec::new();
            let mut remote = Vec::new();
            let mut remote_cols: Vec<usize> = Vec::new();
            for (li, r) in rows.clone().enumerate() {
                for (c, v) in a.row(r) {
                    if rows.contains(&c) {
                        local.push((li, c - rows.start, v));
                    } else {
                        remote.push((li, c, v));
                        remote_cols.push(c);
                    }
                }
            }
            remote_cols.sort_unstable();
            remote_cols.dedup();
            // Group by owner; owners come out ascending because the
            // partition is contiguous and the columns are sorted.
            let mut recv_lists: Vec<(usize, Vec<usize>)> = Vec::new();
            for c in remote_cols {
                let owner = partition.owner(c);
                match recv_lists.last_mut() {
                    Some((o, list)) if *o == owner => list.push(c),
                    _ => recv_lists.push((owner, vec![c])),
                }
            }
            drafts.push(Draft {
                rows,
                local,
                remote,
                recv_lists,
            });
        }

        // Second pass: derive send lists (what each peer needs from me)
        // and compact the remote blocks.
        let mut ranks_out = Vec::with_capacity(num_ranks);
        for rank in 0..num_ranks {
            let draft = &drafts[rank];
            let width = draft.rows.len();
            let a_l = Csr::from_triplets(width, width, draft.local.iter().copied());

            // Compact mapping: position within the concatenated receive
            // buffers (source-rank order, ascending indices within each).
            let mut compact = std::collections::HashMap::new();
            let mut next = 0usize;
            for (_, list) in &draft.recv_lists {
                for &g in list {
                    compact.insert(g, next);
                    next += 1;
                }
            }
            let a_r = Csr::from_triplets(
                width,
                next.max(1),
                draft.remote.iter().map(|&(li, c, v)| (li, compact[&c], v)),
            );

            let send_lists: Vec<(usize, Vec<usize>)> = (0..num_ranks)
                .filter(|&peer| peer != rank)
                .filter_map(|peer| {
                    let lo = drafts[rank].rows.start;
                    drafts[peer]
                        .recv_lists
                        .iter()
                        .find(|&&(src, _)| src == rank)
                        .map(|(_, list)| (peer, list.iter().map(|&g| g - lo).collect()))
                })
                .collect();

            ranks_out.push(RankMatrix {
                rank,
                rows: draft.rows.clone(),
                a_l,
                a_r,
                recv_lists: draft.recv_lists.clone(),
                send_lists,
            });
        }

        DistributedSpmv {
            partition,
            ranks: ranks_out,
        }
    }

    /// Executes the distributed algorithm functionally — pack, exchange,
    /// local multiply, remote multiply, combine — and returns the full
    /// product vector. Validates the decomposition against
    /// [`Csr::spmv`] in tests.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.partition.n);
        // Pack: per rank, per destination, gather local x entries.
        let packed: Vec<Vec<(usize, Vec<f64>)>> = self
            .ranks
            .iter()
            .map(|rm| {
                let lo = rm.rows.start;
                rm.send_lists
                    .iter()
                    .map(|(dst, locals)| (*dst, locals.iter().map(|&li| x[lo + li]).collect()))
                    .collect()
            })
            .collect();

        let mut y = vec![0.0; self.partition.n];
        for rm in &self.ranks {
            // Exchange: assemble x_R from the peers' packed buffers, in
            // recv_lists order.
            let mut x_r = Vec::with_capacity(rm.num_recv());
            for (src, list) in &rm.recv_lists {
                let buf = packed[*src]
                    .iter()
                    .find(|(dst, _)| dst == &rm.rank)
                    .map(|(_, b)| b)
                    .expect("send/recv lists are mirror images");
                assert_eq!(buf.len(), list.len());
                x_r.extend_from_slice(buf);
            }
            let x_l = &x[rm.rows.clone()];
            let y_l = rm.a_l.spmv(x_l);
            let y_r = if rm.num_recv() > 0 {
                rm.a_r.spmv(&x_r)
            } else {
                vec![0.0; rm.rows.len()]
            };
            for (i, r) in rm.rows.clone().enumerate() {
                y[r] = y_l[i] + y_r[i];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{banded_matrix, BandedSpec};

    #[test]
    fn partition_ranges_tile_exactly() {
        for (n, ranks) in [(10, 3), (12, 4), (7, 7), (150_000, 4)] {
            let p = Partition::new(n, ranks);
            let mut covered = 0;
            for r in 0..ranks {
                let range = p.range(r);
                assert_eq!(range.start, covered);
                covered = range.end;
                for i in range.clone() {
                    assert_eq!(p.owner(i), r, "owner({i})");
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    #[should_panic(expected = "ranks")]
    fn too_many_ranks_rejected() {
        Partition::new(3, 4);
    }

    #[test]
    fn send_and_recv_lists_mirror() {
        let a = banded_matrix(&BandedSpec::small(11));
        let d = DistributedSpmv::new(&a, 4);
        for rm in &d.ranks {
            for (dst, locals) in &rm.send_lists {
                let peer = &d.ranks[*dst];
                let (_, recv) = peer
                    .recv_lists
                    .iter()
                    .find(|&&(src, _)| src == rm.rank)
                    .expect("peer must expect our data");
                assert_eq!(recv.len(), locals.len());
                let lo = rm.rows.start;
                for (&li, &g) in locals.iter().zip(recv) {
                    assert_eq!(lo + li, g, "send index must match peer's global index");
                }
            }
        }
    }

    #[test]
    fn local_and_remote_nnz_partition_the_matrix() {
        let a = banded_matrix(&BandedSpec::small(5));
        let d = DistributedSpmv::new(&a, 4);
        let total: usize = d.ranks.iter().map(|rm| rm.a_l.nnz() + rm.a_r.nnz()).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn distributed_multiply_matches_serial() {
        use rand::{Rng, SeedableRng};
        let a = banded_matrix(&BandedSpec::small(2));
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let x: Vec<f64> = (0..a.ncols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want = a.spmv(&x);
        for ranks in [1, 2, 3, 4, 6] {
            let d = DistributedSpmv::new(&a, ranks);
            let got = d.multiply(&x);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "ranks={ranks} row {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn banded_neighbours_only_talk_to_adjacent_ranks() {
        // Band width n/4 over 4 ranks: each rank only needs x entries from
        // adjacent ranks.
        let a = banded_matrix(&BandedSpec::small(13));
        let d = DistributedSpmv::new(&a, 4);
        for rm in &d.ranks {
            for &(src, _) in &rm.recv_lists {
                assert!(
                    src.abs_diff(rm.rank) == 1,
                    "rank {} receives from non-neighbour {}",
                    rm.rank,
                    src
                );
            }
        }
    }

    #[test]
    fn single_rank_has_no_communication() {
        let a = banded_matrix(&BandedSpec::small(3));
        let d = DistributedSpmv::new(&a, 1);
        assert!(d.ranks[0].recv_lists.is_empty());
        assert!(d.ranks[0].send_lists.is_empty());
        assert_eq!(d.ranks[0].a_r.nnz(), 0);
    }

    #[test]
    fn local_remote_balance_near_paper_band() {
        // The paper picks bandwidth n/4 so local and remote work are
        // roughly balanced across 4 ranks; check the interior ranks see a
        // non-trivial remote share.
        let a = banded_matrix(&BandedSpec::small(17));
        let d = DistributedSpmv::new(&a, 4);
        for rm in &d.ranks[1..3] {
            let local = rm.a_l.nnz() as f64;
            let remote = rm.a_r.nnz() as f64;
            let share = remote / (local + remote);
            assert!(share > 0.1 && share < 0.9, "remote share {share}");
        }
    }
}
