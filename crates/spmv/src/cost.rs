//! Cost model mapping the SpMV decomposition onto the platform simulator.
//!
//! Kernel durations are first-order memory-bound estimates derived from
//! the *exact* per-rank counts of the decomposition (non-zeros multiplied,
//! elements packed, bytes moved), so edge ranks are genuinely cheaper than
//! interior ranks — exactly the asymmetry that makes `max` over ranks the
//! right reduction in the measurement protocol.

use crate::dag::{DIRECTIONS, K_HALO, K_PACK, K_UNPACK, K_YL, K_YR};
use crate::partition::DistributedSpmv;
use dr_dag::{CommKey, CostKey};
use dr_sim::{CommPattern, Workload};

/// First-order GPU kernel timing model (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Time per non-zero of an SpMV kernel (memory-bound estimate).
    pub spmv_sec_per_nnz: f64,
    /// Fixed cost of any SpMV kernel invocation.
    pub spmv_fixed: f64,
    /// Time per element gathered by the pack kernel.
    pub gather_sec_per_elem: f64,
    /// Fixed cost of the pack kernel.
    pub gather_fixed: f64,
    /// Host-to-device bandwidth for the unpack copy (bytes/s).
    pub h2d_bandwidth: f64,
    /// Fixed cost of the unpack copy.
    pub h2d_fixed: f64,
}

impl Default for GpuModel {
    /// A100-like magnitudes: ~1.5 TB/s HBM for kernels (≈ 0.2 ns/nnz
    /// effective for irregular SpMV), 24 GB/s PCIe 4.0 for host copies.
    fn default() -> Self {
        GpuModel {
            spmv_sec_per_nnz: 2e-10,
            spmv_fixed: 3e-6,
            gather_sec_per_elem: 4e-10,
            gather_fixed: 2e-6,
            h2d_bandwidth: 24e9,
            h2d_fixed: 4e-6,
        }
    }
}

/// Per-rank resolved costs (coarse and per-neighbour-direction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RankCosts {
    pack: f64,
    yl: f64,
    yr: f64,
    unpack: f64,
    /// Per direction (`prev`, `next`): pack and unpack costs for the
    /// fine-grained DAG.
    pack_dir: [f64; 2],
    unpack_dir: [f64; 2],
}

/// [`Workload`] implementation for a distributed SpMV instance: resolves
/// the `Pack`/`yl`/`yr`/`Unpack` cost keys and the `halo` communication
/// pattern for every rank.
#[derive(Debug, Clone)]
pub struct SpmvWorkload {
    costs: Vec<RankCosts>,
    comms: Vec<CommPattern>,
    /// Per rank, per direction (`prev`, `next`): the single-neighbour
    /// pattern for the fine-grained DAG.
    comms_dir: Vec<[CommPattern; 2]>,
}

impl SpmvWorkload {
    /// Derives the workload from a decomposition under a GPU model.
    pub fn new(dist: &DistributedSpmv, model: &GpuModel) -> Self {
        // Direction `down` (d=0): send to rank−1, receive from rank+1;
        // direction `up` (d=1): send to rank+1, receive from rank−1.
        // Pairing the send with the opposite-side receive keeps each
        // communication key's sends/receives matched across ranks.
        let num_ranks = dist.ranks.len();
        let list_len = |lists: &[(usize, Vec<usize>)], peer: usize| {
            lists
                .iter()
                .find(|&&(p, _)| p == peer)
                .map_or(0, |(_, l)| l.len())
        };

        let mut costs = Vec::with_capacity(num_ranks);
        let mut comms = Vec::with_capacity(num_ranks);
        let mut comms_dir = Vec::with_capacity(num_ranks);
        for rm in &dist.ranks {
            let mut pack_dir = [model.gather_fixed; 2];
            let mut unpack_dir = [model.h2d_fixed; 2];
            let mut dirs: [CommPattern; 2] = Default::default();
            for d in 0..2 {
                let send_peer = if d == 0 {
                    rm.rank.checked_sub(1)
                } else {
                    (rm.rank + 1 < num_ranks).then_some(rm.rank + 1)
                };
                let recv_peer = if d == 0 {
                    (rm.rank + 1 < num_ranks).then_some(rm.rank + 1)
                } else {
                    rm.rank.checked_sub(1)
                };
                if let Some(peer) = send_peer {
                    let send = list_len(&rm.send_lists, peer);
                    pack_dir[d] += send as f64 * model.gather_sec_per_elem;
                    if send > 0 {
                        dirs[d].sends.push((peer, send as u64 * 8));
                    }
                }
                if let Some(peer) = recv_peer {
                    let recv = list_len(&rm.recv_lists, peer);
                    unpack_dir[d] += recv as f64 * 8.0 / model.h2d_bandwidth;
                    if recv > 0 {
                        dirs[d].recvs.push((peer, recv as u64 * 8));
                    }
                }
            }
            costs.push(RankCosts {
                pack: model.gather_fixed + rm.num_send() as f64 * model.gather_sec_per_elem,
                yl: model.spmv_fixed + rm.a_l.nnz() as f64 * model.spmv_sec_per_nnz,
                yr: model.spmv_fixed + rm.a_r.nnz() as f64 * model.spmv_sec_per_nnz,
                unpack: model.h2d_fixed + rm.num_recv() as f64 * 8.0 / model.h2d_bandwidth,
                pack_dir,
                unpack_dir,
            });
            comms.push(CommPattern {
                sends: rm
                    .send_lists
                    .iter()
                    .filter(|(_, l)| !l.is_empty())
                    .map(|(dst, l)| (*dst, l.len() as u64 * 8))
                    .collect(),
                recvs: rm
                    .recv_lists
                    .iter()
                    .filter(|(_, l)| !l.is_empty())
                    .map(|(src, l)| (*src, l.len() as u64 * 8))
                    .collect(),
            });
            comms_dir.push(dirs);
        }
        SpmvWorkload {
            costs,
            comms,
            comms_dir,
        }
    }
}

impl Workload for SpmvWorkload {
    fn num_ranks(&self) -> usize {
        self.costs.len()
    }

    fn cost(&self, rank: usize, key: &CostKey) -> Option<f64> {
        let c = self.costs.get(rank)?;
        match key.0.as_str() {
            K_PACK => return Some(c.pack),
            K_YL => return Some(c.yl),
            K_YR => return Some(c.yr),
            K_UNPACK => return Some(c.unpack),
            _ => {}
        }
        for (d, dir) in DIRECTIONS.iter().enumerate() {
            if key.0 == format!("{K_PACK}-{dir}") {
                return Some(c.pack_dir[d]);
            }
            if key.0 == format!("{K_UNPACK}-{dir}") {
                return Some(c.unpack_dir[d]);
            }
        }
        None
    }

    fn comm(&self, rank: usize, key: &CommKey) -> Option<CommPattern> {
        if key.0 == K_HALO {
            return self.comms.get(rank).cloned();
        }
        for (d, dir) in DIRECTIONS.iter().enumerate() {
            if key.0 == format!("{K_HALO}-{dir}") {
                return self.comms_dir.get(rank).map(|c| c[d].clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{banded_matrix, BandedSpec};

    fn workload() -> (DistributedSpmv, SpmvWorkload) {
        let a = banded_matrix(&BandedSpec::small(21));
        let d = DistributedSpmv::new(&a, 4);
        let w = SpmvWorkload::new(&d, &GpuModel::default());
        (d, w)
    }

    #[test]
    fn all_keys_resolve_on_all_ranks() {
        let (_, w) = workload();
        for rank in 0..4 {
            for key in [K_PACK, K_YL, K_YR, K_UNPACK] {
                let t = w.cost(rank, &CostKey::new(key)).unwrap();
                assert!(t > 0.0, "{key} on rank {rank}");
            }
            assert!(w.comm(rank, &CommKey::new(K_HALO)).is_some());
        }
    }

    #[test]
    fn unknown_keys_are_none() {
        let (_, w) = workload();
        assert!(w.cost(0, &CostKey::new("nope")).is_none());
        assert!(w.comm(0, &CommKey::new("nope")).is_none());
    }

    #[test]
    fn interior_ranks_cost_more_than_edge_ranks() {
        let (_, w) = workload();
        let yr_edge = w.cost(0, &CostKey::new(K_YR)).unwrap();
        let yr_interior = w.cost(1, &CostKey::new(K_YR)).unwrap();
        assert!(
            yr_interior > yr_edge,
            "interior remote block is larger: {yr_interior} vs {yr_edge}"
        );
    }

    #[test]
    fn comm_pattern_matches_decomposition_counts() {
        let (d, w) = workload();
        for rm in &d.ranks {
            let pat = w.comm(rm.rank, &CommKey::new(K_HALO)).unwrap();
            let sent: u64 = pat.sends.iter().map(|&(_, b)| b).sum();
            assert_eq!(sent, rm.num_send() as u64 * 8);
            let recvd: u64 = pat.recvs.iter().map(|&(_, b)| b).sum();
            assert_eq!(recvd, rm.num_recv() as u64 * 8);
        }
    }

    #[test]
    fn paper_scale_times_are_sub_millisecond() {
        // Sanity check the magnitudes on the real paper input: kernels in
        // the tens-to-hundreds of microseconds.
        let a = banded_matrix(&BandedSpec::paper(0));
        let d = DistributedSpmv::new(&a, 4);
        let w = SpmvWorkload::new(&d, &GpuModel::default());
        let yl = w.cost(1, &CostKey::new(K_YL)).unwrap();
        assert!(yl > 1e-6 && yl < 1e-3, "yl = {yl}");
    }
}

#[cfg(test)]
mod fine_cost_tests {
    use super::*;
    use crate::matrix::{banded_matrix, BandedSpec};

    #[test]
    fn directional_patterns_pair_up_across_ranks() {
        let a = banded_matrix(&BandedSpec::small(23));
        let d = DistributedSpmv::new(&a, 4);
        let w = SpmvWorkload::new(&d, &GpuModel::default());
        for dir in DIRECTIONS {
            let key = CommKey::new(format!("{K_HALO}-{dir}"));
            for rank in 0..4 {
                let pat = w.comm(rank, &key).unwrap();
                for &(peer, bytes) in &pat.sends {
                    let peer_pat = w.comm(peer, &key).unwrap();
                    assert!(
                        peer_pat.recvs.contains(&(rank, bytes)),
                        "{dir}: rank {rank} -> {peer} unmatched"
                    );
                }
            }
        }
    }

    #[test]
    fn directional_costs_resolve_everywhere() {
        let a = banded_matrix(&BandedSpec::small(23));
        let d = DistributedSpmv::new(&a, 4);
        let w = SpmvWorkload::new(&d, &GpuModel::default());
        for dir in DIRECTIONS {
            for rank in 0..4 {
                assert!(
                    w.cost(rank, &CostKey::new(format!("{K_PACK}-{dir}")))
                        .unwrap()
                        > 0.0
                );
                assert!(
                    w.cost(rank, &CostKey::new(format!("{K_UNPACK}-{dir}")))
                        .unwrap()
                        > 0.0
                );
            }
        }
    }

    #[test]
    fn directional_totals_match_coarse_totals() {
        let a = banded_matrix(&BandedSpec::small(23));
        let d = DistributedSpmv::new(&a, 4);
        let w = SpmvWorkload::new(&d, &GpuModel::default());
        for rank in 0..4 {
            let coarse = w.comm(rank, &CommKey::new(K_HALO)).unwrap();
            let total_coarse: u64 = coarse.sends.iter().map(|&(_, b)| b).sum();
            let total_dir: u64 = DIRECTIONS
                .iter()
                .flat_map(|dir| {
                    w.comm(rank, &CommKey::new(format!("{K_HALO}-{dir}")))
                        .unwrap()
                        .sends
                        .into_iter()
                        .map(|(_, b)| b)
                })
                .sum();
            assert_eq!(total_coarse, total_dir, "rank {rank}");
        }
    }
}
