//! Ready-made SpMV exploration scenarios bundling the DAG decision space,
//! the decomposition-derived workload, and benchmarking helpers.

use crate::cost::{GpuModel, SpmvWorkload};
use crate::dag::{spmv_dag, SpmvDagConfig};
use crate::matrix::{banded_matrix, BandedSpec};
use crate::partition::DistributedSpmv;
use dr_dag::{build_schedule, DecisionSpace, Traversal};
use dr_sim::{benchmark, BenchConfig, BenchResult, CompiledProgram, Platform, SimError};

/// A fully assembled SpMV design-space exploration problem.
#[derive(Debug, Clone)]
pub struct SpmvScenario {
    /// The traversal decision space (DAG + sync ops + streams).
    pub space: DecisionSpace,
    /// The decomposition-derived cost/communication model.
    pub workload: SpmvWorkload,
    /// The platform the implementations run on.
    pub platform: Platform,
    /// The matrix decomposition (kept for inspection and numeric checks).
    pub dist: DistributedSpmv,
}

impl SpmvScenario {
    /// Assembles a scenario from its ingredients.
    pub fn build(
        spec: &BandedSpec,
        ranks: usize,
        streams: usize,
        dag_cfg: &SpmvDagConfig,
        model: &GpuModel,
        platform: Platform,
    ) -> Self {
        let a = banded_matrix(spec);
        let dist = DistributedSpmv::new(&a, ranks);
        let workload = SpmvWorkload::new(&dist, model);
        let dag = spmv_dag(dag_cfg).expect("static SpMV DAG is valid");
        let space = DecisionSpace::new(dag, streams).expect("SpMV space fits in 64 ops");
        SpmvScenario {
            space,
            workload,
            platform,
            dist,
        }
    }

    /// The paper's demonstration setup: the 150 000-row banded matrix on
    /// 4 ranks with 2 streams.
    pub fn paper(seed: u64) -> Self {
        SpmvScenario::build(
            &BandedSpec::paper(seed),
            4,
            2,
            &SpmvDagConfig::default(),
            &GpuModel::default(),
            Platform::perlmutter_like(),
        )
    }

    /// The paper setup with the fine-grained (per-neighbour-direction)
    /// DAG of Section III-A's granularity discussion. The space is far
    /// too large to enumerate; use MCTS.
    pub fn paper_fine(seed: u64) -> Self {
        SpmvScenario::build(
            &BandedSpec::paper(seed),
            4,
            2,
            &SpmvDagConfig {
                with_unpack: true,
                granularity: crate::dag::Granularity::PerNeighbor,
            },
            &GpuModel::default(),
            Platform::perlmutter_like(),
        )
    }

    /// A scaled-down setup with the same proportions, cheap enough for
    /// tests and examples.
    pub fn small(seed: u64) -> Self {
        SpmvScenario::build(
            &BandedSpec::small(seed),
            4,
            2,
            &SpmvDagConfig::default(),
            &GpuModel::default(),
            Platform::perlmutter_like(),
        )
    }

    /// Compiles one traversal into an executable program.
    pub fn compile(&self, t: &Traversal) -> Result<CompiledProgram, SimError> {
        let schedule = build_schedule(&self.space, t);
        CompiledProgram::compile(&schedule, &self.workload)
    }

    /// Runs the full measurement protocol on one traversal.
    pub fn benchmark(
        &self,
        t: &Traversal,
        cfg: &BenchConfig,
        seed: u64,
    ) -> Result<BenchResult, SimError> {
        let prog = self.compile(t)?;
        benchmark(&prog, &self.platform, cfg, seed)
    }
}

#[cfg(test)]
impl SpmvScenario {
    fn workload_ranks(&self) -> usize {
        use dr_sim::Workload;
        self.workload.num_ranks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_traversal_of_the_small_scenario_executes() {
        let sc = SpmvScenario::small(1);
        let cfg = BenchConfig {
            t_measure: 1e-4,
            num_measurements: 1,
            max_samples: 2,
        };
        let all: Vec<_> = sc.space.enumerate().collect();
        assert!(all.len() > 500, "space size {}", all.len());
        // Executing the whole space is the Fig. 1 workload; here just
        // spot-check a deterministic stride for speed.
        for t in all.iter().step_by(97) {
            let res = sc.benchmark(t, &cfg, 7).unwrap();
            assert!(res.time() > 0.0);
        }
    }

    #[test]
    fn orderings_change_performance() {
        let sc = SpmvScenario::small(2);
        let platform = sc.platform.clone().noiseless();
        let sc = SpmvScenario { platform, ..sc };
        let cfg = BenchConfig {
            t_measure: 1e-4,
            num_measurements: 3,
            max_samples: 5,
        };
        let all: Vec<_> = sc.space.enumerate().collect();
        let times: Vec<f64> = all
            .iter()
            .step_by(41)
            .map(|t| sc.benchmark(t, &cfg, 3).unwrap().time())
            .collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max / min > 1.05,
            "design decisions must matter: min {min}, max {max}"
        );
    }

    #[test]
    fn paper_scenario_assembles() {
        let sc = SpmvScenario::paper(0);
        assert_eq!(sc.workload_ranks(), 4);
        assert_eq!(sc.space.num_streams(), 2);
    }
}
