//! Compressed sparse row matrices and the paper's synthetic banded input.
//!
//! The demonstration input is a band-diagonal matrix with 150 000
//! rows/columns, 1 500 000 non-zeros, and a bandwidth of `150000/4`; the
//! non-zeros are uniformly randomly distributed within the band (paper
//! Section III). That bandwidth approximately balances the local and
//! remote partial products when the matrix is row-partitioned across four
//! ranks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row start offsets into `col_idx`/`vals`; length `nrows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column index of each stored entry, ascending within a row.
    pub col_idx: Vec<usize>,
    /// Value of each stored entry.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from (row, col, value) triplets. Triplets may
    /// arrive in any order; duplicates are summed.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Csr {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nrows];
        for (r, c, v) in triplets {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
            rows[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Dense matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        #[allow(clippy::needless_range_loop)] // indices are the clearest form here
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[i] * x[self.col_idx[i]];
            }
            y[r] = acc;
        }
        y
    }

    /// Entries of one row as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.row_ptr[r]..self.row_ptr[r + 1]).map(move |i| (self.col_idx[i], self.vals[i]))
    }
}

/// Parameters of the synthetic banded matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandedSpec {
    /// Rows and columns (the matrix is square).
    pub n: usize,
    /// Target number of non-zeros.
    pub nnz: usize,
    /// Total band width: entries satisfy `|i - j| <= bandwidth / 2`.
    pub bandwidth: usize,
    /// Generator seed.
    pub seed: u64,
}

impl BandedSpec {
    /// The paper's demonstration input: n = 150 000, nnz = 1 500 000,
    /// bandwidth = n / 4.
    pub fn paper(seed: u64) -> Self {
        BandedSpec {
            n: 150_000,
            nnz: 1_500_000,
            bandwidth: 150_000 / 4,
            seed,
        }
    }

    /// A scaled-down instance with identical proportions, cheap enough
    /// for unit tests (n = 1 200, nnz = 12 000, bandwidth = n / 4).
    pub fn small(seed: u64) -> Self {
        BandedSpec {
            n: 1200,
            nnz: 12_000,
            bandwidth: 300,
            seed,
        }
    }
}

/// Generates the banded matrix: `nnz` entries distributed uniformly at
/// random within the band (duplicates are re-drawn per row so the exact
/// non-zero count is met), values uniform in `[-1, 1)`.
pub fn banded_matrix(spec: &BandedSpec) -> Csr {
    let BandedSpec {
        n,
        nnz,
        bandwidth,
        seed,
    } = *spec;
    assert!(n > 0 && bandwidth > 0, "degenerate banded spec");
    let half = (bandwidth / 2).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row = nnz / n;
    let remainder = nnz % n;
    let mut triplets = Vec::with_capacity(nnz);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(n - 1);
        let slots = hi - lo + 1;
        let want = (per_row + usize::from(i < remainder)).min(slots);
        // Rejection-sample distinct columns within the band.
        let mut cols = std::collections::HashSet::with_capacity(want * 2);
        while cols.len() < want {
            cols.insert(rng.gen_range(lo..=hi));
        }
        let mut cols: Vec<usize> = cols.into_iter().collect();
        cols.sort_unstable();
        for c in cols {
            triplets.push((i, c, rng.gen_range(-1.0..1.0)));
        }
    }
    Csr::from_triplets(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let m = Csr::from_triplets(2, 3, [(0, 2, 1.0), (0, 0, 2.0), (0, 2, 3.0), (1, 1, 5.0)]);
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 2.0), (2, 4.0)]);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(1, 5.0)]);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let m = Csr::from_triplets(3, 3, [(0, 0, 2.0), (0, 2, 1.0), (1, 1, -1.0), (2, 0, 4.0)]);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.spmv(&x), vec![2.0 * 1.0 + 3.0, -2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_bounds_checked() {
        Csr::from_triplets(2, 2, [(2, 0, 1.0)]);
    }

    #[test]
    fn banded_matrix_hits_nnz_and_band() {
        let spec = BandedSpec::small(3);
        let m = banded_matrix(&spec);
        assert_eq!(m.nrows, spec.n);
        assert_eq!(m.nnz(), spec.nnz);
        let half = spec.bandwidth / 2;
        for r in 0..m.nrows {
            for (c, v) in m.row(r) {
                assert!(r.abs_diff(c) <= half, "({r},{c}) outside band");
                assert!((-1.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn banded_matrix_is_seed_deterministic() {
        let a = banded_matrix(&BandedSpec::small(7));
        let b = banded_matrix(&BandedSpec::small(7));
        let c = banded_matrix(&BandedSpec::small(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn banded_nonzeros_spread_across_band() {
        // Uniform placement: a decent fraction of entries must be off the
        // diagonal blocks (sanity check on the distribution).
        let m = banded_matrix(&BandedSpec::small(1));
        let half = 150;
        let far = (0..m.nrows)
            .flat_map(|r| m.row(r).map(move |(c, _)| (r, c)))
            .filter(|&(r, c)| r.abs_diff(c) > half / 2)
            .count();
        assert!(far > m.nnz() / 10, "expected spread within band, got {far}");
    }

    #[test]
    fn paper_spec_dimensions() {
        let s = BandedSpec::paper(0);
        assert_eq!(s.n, 150_000);
        assert_eq!(s.nnz, 1_500_000);
        assert_eq!(s.bandwidth, 37_500);
    }
}
