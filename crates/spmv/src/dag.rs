//! The SpMV program DAG (paper Fig. 3c).
//!
//! Operations (names match the paper's generated rules):
//!
//! * `Pack` (GPU) — gather the local `x` entries each peer needs into
//!   per-peer send buffers;
//! * `PostSend` / `PostRecv` (CPU) — post the non-blocking point-to-point
//!   operations;
//! * `WaitSend` / `WaitRecv` (CPU) — complete them;
//! * `Unpack` (GPU, optional) — move the received `x_R` to the device;
//! * `yl` (GPU) — local partial product `y_L = A_L x_L`;
//! * `yr` (GPU) — remote partial product `y_R = A_R x_R`.
//!
//! Dependencies: `Pack → PostSend → WaitSend`, `PostRecv → WaitRecv`,
//! plus the two deadlock-freedom edges `PostSend → WaitRecv` and
//! `PostRecv → WaitSend` (in an SPMD program, every rank must have posted
//! both directions before any rank blocks in an `MPI_Wait`; without these
//! edges the rendezvous protocol deadlocks, which the simulator detects —
//! and the paper's rule tables never order `PostRecv`/`PostSend` against
//! the opposite wait, consistent with those pairs being DAG-constrained).
//! Finally `WaitRecv → [Unpack →] yr`; `yl` is independent of the
//! communication chain.

use dr_dag::{CommKey, CostKey, DagBuilder, DagError, OpSpec, ProgramDag};

/// Cost key of the pack kernel.
pub const K_PACK: &str = "Pack";
/// Cost key of the local multiply kernel.
pub const K_YL: &str = "yl";
/// Cost key of the remote multiply kernel.
pub const K_YR: &str = "yr";
/// Cost key of the unpack (H2D scatter) kernel.
pub const K_UNPACK: &str = "Unpack";
/// Communication key of the halo exchange.
pub const K_HALO: &str = "halo";

/// Operation granularity (paper Section III-A): the SpMV "could have been
/// implemented with a set of parallel independent vertices for each
/// separate pack and `MPI_Isend` instead of collecting them into single
/// Pack and PostSends vertices. This finer granularity would eliminate
/// false dependencies … The downside … is a larger space of
/// implementations to search."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One Pack/PostSend/… vertex covering all peers (the paper's
    /// demonstration choice).
    #[default]
    Coarse,
    /// Separate Pack/PostSend/PostRecv/WaitSend/WaitRecv/Unpack vertices
    /// per neighbour direction (`prev`/`next` for the banded matrix).
    PerNeighbor,
}

/// Data-flow direction suffixes used by the fine-grained DAG. Each
/// direction is one matched exchange: under `down`, every rank sends to
/// its lower neighbour and receives from its upper one (and vice versa
/// for `up`), so sends and receives of the same communication key pair up
/// across ranks.
pub const DIRECTIONS: [&str; 2] = ["down", "up"];

/// Structural options for the SpMV DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvDagConfig {
    /// Include the explicit `Unpack` GPU operation between `WaitRecv` and
    /// `yr`. With it the space closely matches the paper's scale; without
    /// it `yr` reads the received buffer directly.
    pub with_unpack: bool,
    /// Coarse (paper) or per-neighbour vertices.
    pub granularity: Granularity,
}

impl Default for SpmvDagConfig {
    fn default() -> Self {
        SpmvDagConfig {
            with_unpack: true,
            granularity: Granularity::Coarse,
        }
    }
}

/// Builds the SpMV program DAG.
pub fn spmv_dag(cfg: &SpmvDagConfig) -> Result<ProgramDag, DagError> {
    match cfg.granularity {
        Granularity::Coarse => coarse_dag(cfg),
        Granularity::PerNeighbor => per_neighbor_dag(cfg),
    }
}

fn coarse_dag(cfg: &SpmvDagConfig) -> Result<ProgramDag, DagError> {
    let halo = CommKey::new(K_HALO);
    let mut b = DagBuilder::new();
    let pack = b.add("Pack", OpSpec::GpuKernel(CostKey::new(K_PACK)));
    let post_send = b.add("PostSend", OpSpec::PostSends(halo.clone()));
    let post_recv = b.add("PostRecv", OpSpec::PostRecvs(halo.clone()));
    let wait_send = b.add("WaitSend", OpSpec::WaitSends(halo.clone()));
    let wait_recv = b.add("WaitRecv", OpSpec::WaitRecvs(halo));
    let yl = b.add("yl", OpSpec::GpuKernel(CostKey::new(K_YL)));
    let yr = b.add("yr", OpSpec::GpuKernel(CostKey::new(K_YR)));

    b.edge(pack, post_send);
    b.edge(post_send, wait_send);
    b.edge(post_recv, wait_recv);
    b.edge(post_send, wait_recv);
    b.edge(post_recv, wait_send);
    if cfg.with_unpack {
        let unpack = b.add("Unpack", OpSpec::GpuKernel(CostKey::new(K_UNPACK)));
        b.edge(wait_recv, unpack);
        b.edge(unpack, yr);
    } else {
        b.edge(wait_recv, yr);
    }
    let _ = yl; // independent: Start -> yl -> End via the builder.
    Ok(b.build().expect("the SpMV DAG is statically valid"))
}

/// The fine-grained variant: one Pack/PostSend/PostRecv/WaitSend/WaitRecv
/// (and optional Unpack) per neighbour direction, eliminating the false
/// dependencies of the coarse vertices (e.g. sending to `next` no longer
/// waits on the pack for `prev`), at the cost of a much larger space.
fn per_neighbor_dag(cfg: &SpmvDagConfig) -> Result<ProgramDag, DagError> {
    let mut b = DagBuilder::new();
    let yl = b.add("yl", OpSpec::GpuKernel(CostKey::new(K_YL)));
    let yr = b.add("yr", OpSpec::GpuKernel(CostKey::new(K_YR)));
    let mut post_sends = Vec::new();
    let mut post_recvs = Vec::new();
    let mut wait_sends = Vec::new();
    let mut wait_recvs = Vec::new();
    for d in DIRECTIONS {
        let halo = CommKey::new(format!("{K_HALO}-{d}"));
        let pack = b.add(
            format!("Pack-{d}"),
            OpSpec::GpuKernel(CostKey::new(format!("{K_PACK}-{d}"))),
        );
        let ps = b.add(format!("PostSend-{d}"), OpSpec::PostSends(halo.clone()));
        let pr = b.add(format!("PostRecv-{d}"), OpSpec::PostRecvs(halo.clone()));
        let ws = b.add(format!("WaitSend-{d}"), OpSpec::WaitSends(halo.clone()));
        let wr = b.add(format!("WaitRecv-{d}"), OpSpec::WaitRecvs(halo));
        b.edge(pack, ps);
        b.edge(ps, ws);
        b.edge(pr, wr);
        if cfg.with_unpack {
            let unpack = b.add(
                format!("Unpack-{d}"),
                OpSpec::GpuKernel(CostKey::new(format!("{K_UNPACK}-{d}"))),
            );
            b.edge(wr, unpack);
            b.edge(unpack, yr);
        } else {
            b.edge(wr, yr);
        }
        post_sends.push(ps);
        post_recvs.push(pr);
        wait_sends.push(ws);
        wait_recvs.push(wr);
    }
    // Deadlock freedom across directions: every rank posts everything
    // before any rank blocks in a wait.
    for &ps in &post_sends {
        for &wr in &wait_recvs {
            b.edge(ps, wr);
        }
    }
    for &pr in &post_recvs {
        for &ws in &wait_sends {
            b.edge(pr, ws);
        }
    }
    let _ = yl;
    Ok(b.build()
        .expect("the fine-grained SpMV DAG is statically valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{DecisionSpace, VertexKind};

    #[test]
    fn dag_has_expected_vertices() {
        let dag = spmv_dag(&SpmvDagConfig::default()).unwrap();
        for name in [
            "Pack", "PostSend", "PostRecv", "WaitSend", "WaitRecv", "yl", "yr", "Unpack",
        ] {
            assert!(dag.by_name(name).is_some(), "{name} missing");
        }
        assert_eq!(dag.user_vertices().count(), 8);
        for gpu in ["Pack", "yl", "yr", "Unpack"] {
            let v = dag.by_name(gpu).unwrap();
            assert_eq!(dag.vertex(v).kind(), VertexKind::Gpu, "{gpu}");
        }
    }

    #[test]
    fn decision_space_spawns_paper_sync_ops() {
        let dag = spmv_dag(&SpmvDagConfig::default()).unwrap();
        let sp = DecisionSpace::new(dag, 2).unwrap();
        assert!(sp.op_by_name("CER-after-Pack").is_some());
        assert!(sp.op_by_name("CES-b4-PostSend").is_some());
        // yl/yr feed only End, which device-syncs: no CER for them.
        assert!(sp.op_by_name("CER-after-yl").is_none());
        assert!(sp.op_by_name("CER-after-yr").is_none());
    }

    #[test]
    fn space_size_is_paper_scale() {
        let dag = spmv_dag(&SpmvDagConfig::default()).unwrap();
        let sp = DecisionSpace::new(dag, 2).unwrap();
        let count = sp.count_traversals();
        // The paper reports 2036 for its exact Fig. 3c DAG; ours must land
        // in the same regime (a few thousand, far beyond hand search).
        assert!(count > 500 && count < 10_000, "space size {count}");
    }

    #[test]
    fn no_unpack_variant_is_smaller() {
        let with = DecisionSpace::new(spmv_dag(&SpmvDagConfig::default()).unwrap(), 2)
            .unwrap()
            .count_traversals();
        let without = DecisionSpace::new(
            spmv_dag(&SpmvDagConfig {
                with_unpack: false,
                ..Default::default()
            })
            .unwrap(),
            2,
        )
        .unwrap()
        .count_traversals();
        assert!(without < with, "{without} !< {with}");
    }

    #[test]
    fn every_traversal_orders_posts_before_waits() {
        let dag = spmv_dag(&SpmvDagConfig {
            with_unpack: false,
            ..Default::default()
        })
        .unwrap();
        let sp = DecisionSpace::new(dag, 2).unwrap();
        for t in sp.enumerate() {
            let pos = t.positions(sp.num_ops());
            let p = |n: &str| pos[sp.op_by_name(n).unwrap()];
            assert!(p("PostSend") < p("WaitSend"));
            assert!(p("PostRecv") < p("WaitRecv"));
            assert!(p("PostSend") < p("WaitRecv"), "deadlock-freedom edge");
            assert!(p("PostRecv") < p("WaitSend"), "deadlock-freedom edge");
            assert!(p("Pack") < p("CER-after-Pack"));
            assert!(p("CER-after-Pack") < p("CES-b4-PostSend"));
            assert!(p("CES-b4-PostSend") < p("PostSend"));
            assert!(p("WaitRecv") < p("yr"));
        }
    }
}

#[cfg(test)]
mod fine_tests {
    use super::*;
    use dr_dag::DecisionSpace;

    fn fine_cfg() -> SpmvDagConfig {
        SpmvDagConfig {
            with_unpack: true,
            granularity: Granularity::PerNeighbor,
        }
    }

    #[test]
    fn fine_dag_has_per_direction_vertices() {
        let dag = spmv_dag(&fine_cfg()).unwrap();
        for d in DIRECTIONS {
            for op in [
                "Pack", "PostSend", "PostRecv", "WaitSend", "WaitRecv", "Unpack",
            ] {
                assert!(dag.by_name(&format!("{op}-{d}")).is_some(), "{op}-{d}");
            }
        }
        assert_eq!(dag.user_vertices().count(), 2 * 6 + 2);
    }

    #[test]
    fn fine_space_is_much_larger_than_coarse() {
        let coarse = DecisionSpace::new(spmv_dag(&SpmvDagConfig::default()).unwrap(), 2)
            .unwrap()
            .count_traversals();
        let fine = DecisionSpace::new(spmv_dag(&fine_cfg()).unwrap(), 2)
            .unwrap()
            .count_traversals();
        assert!(
            fine > coarse * 100,
            "finer granularity must blow up the space: {fine} vs {coarse}"
        );
    }

    #[test]
    fn fine_dag_removes_false_dependencies() {
        // With per-direction vertices, PostSend-down no longer depends on
        // Pack-up: a traversal can send down before packing up.
        let dag = spmv_dag(&fine_cfg()).unwrap();
        let space = DecisionSpace::new(dag, 1).unwrap();
        let ps_down = space.op_by_name("PostSend-down").unwrap();
        let pack_up = space.op_by_name("Pack-up").unwrap();
        // No precedence path from Pack-up to PostSend-down.
        let mut reachable = vec![false; space.num_ops()];
        let mut stack = vec![pack_up];
        while let Some(op) = stack.pop() {
            for &s in space.op_succs(op) {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }
        assert!(!reachable[ps_down], "false dependency must be gone");
    }
}
