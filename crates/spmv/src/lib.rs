//! # dr-spmv — the distributed SpMV demonstration workload
//!
//! The paper demonstrates its design-rule system on a distributed
//! sparse-matrix–vector multiplication (Fig. 3): a banded random matrix is
//! row-partitioned across MPI ranks; each rank computes a local partial
//! product while exchanging the halo `x` entries needed for the remote
//! partial product. This crate provides:
//!
//! * [`Csr`] / [`banded_matrix`] — sparse matrices and the paper's
//!   synthetic banded input ([`BandedSpec::paper`]);
//! * [`DistributedSpmv`] — the row partition, local/remote split, and
//!   pack/receive index lists, with a functional [`DistributedSpmv::multiply`]
//!   that validates the decomposition numerically;
//! * [`spmv_dag`] — the Fig. 3c program DAG;
//! * [`SpmvWorkload`] / [`GpuModel`] — the cost model binding the
//!   decomposition's exact counts to the platform simulator;
//! * [`SpmvScenario`] — everything assembled, ready for exploration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod dag;
mod matrix;
mod partition;
mod scenario;

pub use cost::{GpuModel, SpmvWorkload};
pub use dag::{
    spmv_dag, Granularity, SpmvDagConfig, DIRECTIONS, K_HALO, K_PACK, K_UNPACK, K_YL, K_YR,
};
pub use matrix::{banded_matrix, BandedSpec, Csr};
pub use partition::{DistributedSpmv, Partition, RankMatrix};
pub use scenario::SpmvScenario;
