//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] over the [`rngs::SmallRng`] / [`rngs::StdRng`]
//! generators. Both generators are xoshiro256++ seeded through SplitMix64
//! — statistically solid, deterministic per seed, and dependency-free.
//! The bit streams differ from upstream `rand`, so seed-derived values
//! are stable within this repository but not across implementations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into independent state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core state shared by both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden fixed point.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's fast generator (upstream: xoshiro-based too).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// The "standard" generator. Upstream uses ChaCha12; statistical
    /// quality is irrelevant at this repo's scale, so it shares the
    /// xoshiro engine with a domain-separated seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state ^ 0x5DEE_CE66_D0F1_5A2B))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// Types drawable via [`Rng::gen`] (upstream: the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw in `[0, span)` (Lemire's multiply-shift).
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land on `end`; clamp to the half-open contract.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level draws, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-drawable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_f64_is_in_range_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..1000 {
            seen_inc[rng.gen_range(4usize..=6) - 4] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
