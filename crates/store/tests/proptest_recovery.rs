//! Property test for crash recovery: for arbitrary committed record
//! sequences, truncating the segment at **every** byte boundary inside
//! the final record must recover exactly the committed prefix — same
//! record count, same lookups, same ledger-style fingerprint — and
//! report the torn bytes. This is the byte-level half of the kill-resume
//! chaos proof (the process-level half lives in `tests/swarm_chaos.rs`
//! at the workspace root).

use dr_dag::{Placement, Traversal};
use dr_sim::{BenchResult, Percentiles};
use dr_store::{ResultStore, StoredRecord, SEGMENT_FILE};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ledger-style record-set fingerprint (same constants and fold as
/// `dr_core::records_fingerprint` and the store), recomputed here from
/// first principles so the test does not trust the implementation.
fn reference_fingerprint(records: &[StoredRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for rec in records {
        for v in [rec.traversal.canonical_hash(), rec.result.time().to_bits()] {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// A fresh scratch directory per proptest case.
fn case_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dr-store-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arbitrary traversal: 1–4 placements with small op ids and optional
/// stream bindings.
fn arb_traversal() -> impl Strategy<Value = Traversal> {
    vec((0usize..64, 0usize..5), 1..5).prop_map(|steps| Traversal {
        steps: steps
            .into_iter()
            .map(|(op, s)| Placement {
                op,
                stream: (s > 0).then(|| s - 1),
            })
            .collect(),
    })
}

/// Arbitrary finite measurement set; percentiles derived from it so the
/// record is shaped like real bench output (the store does not care).
fn arb_record() -> impl Strategy<Value = StoredRecord> {
    (arb_traversal(), vec(1u64..2_000_000, 1..6)).prop_map(|(traversal, raw)| {
        let measurements: Vec<f64> = raw.iter().map(|&m| m as f64 * 1e-7).collect();
        let mut sorted = measurements.clone();
        sorted.sort_by(f64::total_cmp);
        let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f) as usize];
        StoredRecord {
            traversal,
            result: BenchResult {
                measurements,
                percentiles: Percentiles {
                    p01: q(0.01),
                    p10: q(0.10),
                    p50: q(0.50),
                    p90: q(0.90),
                    p99: q(0.99),
                },
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn truncation_at_every_byte_of_the_final_record_recovers_the_prefix(
        records in vec(arb_record(), 1..5),
    ) {
        let dir = case_dir();
        {
            let store = ResultStore::open(&dir).unwrap();
            for (i, rec) in records.iter().enumerate() {
                store.append(&rec.traversal, &rec.result).unwrap();
                prop_assert_eq!(store.len(), i + 1);
            }
        }
        let seg = dir.join(SEGMENT_FILE);
        let full = std::fs::read(&seg).unwrap();

        // Find where the final record's frame begins by replaying the
        // length prefixes (magic is 8 bytes, frame header is 12).
        let mut offsets = vec![8usize];
        let mut pos = 8usize;
        for _ in 0..records.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 12 + len;
            offsets.push(pos);
        }
        prop_assert_eq!(pos, full.len(), "frame walk must cover the segment");
        let last_start = offsets[records.len() - 1];

        let committed = &records[..records.len() - 1];
        let expect_fp = reference_fingerprint(committed);

        // Every byte boundary inside the final record, from "frame
        // entirely absent" up to "one byte short".
        for cut in last_start..full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let store = ResultStore::open(&dir).unwrap();
            prop_assert_eq!(store.len(), committed.len(), "cut at byte {}", cut);
            prop_assert_eq!(store.fingerprint(), expect_fp, "cut at byte {}", cut);
            prop_assert_eq!(
                store.stats().truncated_bytes,
                (cut - last_start) as u64,
                "cut at byte {}", cut
            );
            // Committed records answer from the store; the torn one is
            // gone (its traversal may legitimately still hit when an
            // earlier committed record had the same identity).
            for rec in committed {
                prop_assert_eq!(
                    store.lookup(&rec.traversal),
                    Some(rec.result.clone()),
                    "cut at byte {}", cut
                );
            }
            let torn = &records[records.len() - 1];
            if !committed.iter().any(|r| r.traversal == torn.traversal) {
                prop_assert_eq!(store.lookup(&torn.traversal), None, "cut at byte {}", cut);
            }
        }

        // Untouched segment recovers everything.
        std::fs::write(&seg, &full).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), records.len());
        prop_assert_eq!(store.fingerprint(), reference_fingerprint(&records));
        prop_assert_eq!(store.stats().truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
