//! # dr-store — a durable, crash-safe result store
//!
//! Exploration front-loads all pipeline cost into thousands of
//! simulated benchmarks, so their results deserve to survive the
//! process that computed them. This crate persists
//! `(canonical_hash, traversal identity, BenchResult)` records in an
//! append-only, length-prefixed and checksummed segment log, with:
//!
//! * **torn-tail recovery** — a partially written final record
//!   (interrupted append, `SIGKILL`, power loss) is detected by its
//!   length prefix/checksum on open, truncated away, and never
//!   propagated to readers; everything before it is recovered exactly;
//! * **atomic segment rotation** — [`ResultStore::compact`] rewrites
//!   the segment via write-to-temp + `rename`, so readers always see
//!   either the old or the new segment, never a half-written one;
//! * **a striped in-memory read path** — committed records warm a
//!   [`StripedCache`] keyed by [`Traversal::canonical_hash`], so
//!   lookups never touch disk after open and hit/miss counters prove
//!   (in tests and chaos runs) that stored traversals are not
//!   re-simulated;
//! * **a ledger-style fingerprint** — the FNV-1a fold over committed
//!   records (canonical hash + median-time bits, in log order) matches
//!   the run ledger's record-set fingerprint algorithm, tying on-disk
//!   state to the determinism contract of PRs 2–8.
//!
//! The byte layout is documented in DESIGN.md ("Distributed
//! exploration & durability"). Results are pure functions of traversal
//! identity (see `dr_dag::eval_seed`), which is what makes answering
//! from disk sound: a stored measurement is *the* measurement.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dr_dag::{Placement, Traversal};
use dr_par::StripedCache;
use dr_sim::{BenchResult, Percentiles};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every segment file.
pub const STORE_MAGIC: &[u8; 8] = b"DRSTOR1\n";

/// File name of the store's segment inside its directory.
pub const SEGMENT_FILE: &str = "segment-000.drs";

/// Sentinel encoding of a host placement (no stream binding).
const NO_STREAM: u32 = 0;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice (the per-record checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One committed record: the traversal's full identity and its
/// measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// The complete traversal (issue order + stream bindings).
    pub traversal: Traversal,
    /// The measurement record persisted for it.
    pub result: BenchResult,
}

/// Counters of one store's lifetime (see [`ResultStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store (no simulation needed).
    pub hits: u64,
    /// Lookups that found nothing (the caller must simulate).
    pub misses: u64,
    /// Records recovered from disk when the store was opened.
    pub loaded: u64,
    /// Records appended since open.
    pub appended: u64,
    /// Bytes dropped by torn-tail truncation on open (0 for a clean
    /// segment).
    pub truncated_bytes: u64,
}

/// State guarded by the writer lock: the open segment handle plus the
/// committed-prefix bookkeeping (log order and running fingerprint).
struct Writer {
    file: File,
    /// Canonical hashes of committed records, in log (append) order.
    log: Vec<u64>,
    /// Ledger-style FNV-1a fold over `(hash, median-time bits)` of the
    /// committed records, in log order.
    fingerprint: u64,
}

/// The durable result store over one directory.
///
/// All methods take `&self`; the store is `Sync` (a `Mutex` guards the
/// writer, the read path is the lock-striped cache) so one store can be
/// shared by every evaluator of a parallel exploration run.
pub struct ResultStore {
    dir: PathBuf,
    cache: StripedCache<u64, StoredRecord>,
    writer: Mutex<Writer>,
    loaded: u64,
    truncated_bytes: u64,
    appended: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Appends `v` as little-endian bytes.
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as little-endian bytes.
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `*pos`, advancing it.
fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let end = pos.checked_add(4)?;
    let v = u32::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

/// Reads a little-endian `u64` at `*pos`, advancing it.
fn take_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let v = u64::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

/// Encodes one record's payload (everything after the frame header).
///
/// Layout, all little-endian:
///
/// ```text
/// canonical_hash : u64
/// n_steps        : u32
/// n_steps ×      : op u32, stream u32   (stream = StreamId + 1, 0 = host)
/// n_measurements : u32
/// n_measurements×: measurement f64 bits as u64
/// 5 ×            : p01/p10/p50/p90/p99 f64 bits as u64
/// ```
fn encode_payload(hash: u64, rec: &StoredRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + rec.traversal.steps.len() * 8);
    put_u64(&mut buf, hash);
    put_u32(&mut buf, rec.traversal.steps.len() as u32);
    for p in &rec.traversal.steps {
        put_u32(&mut buf, p.op as u32);
        put_u32(&mut buf, p.stream.map_or(NO_STREAM, |s| s as u32 + 1));
    }
    put_u32(&mut buf, rec.result.measurements.len() as u32);
    for m in &rec.result.measurements {
        put_u64(&mut buf, m.to_bits());
    }
    let p = &rec.result.percentiles;
    for q in [p.p01, p.p10, p.p50, p.p90, p.p99] {
        put_u64(&mut buf, q.to_bits());
    }
    buf
}

/// Decodes one payload, returning `(canonical_hash, record)`. `None`
/// means the payload is malformed (wrong length for its counts), which
/// recovery treats exactly like a checksum mismatch.
fn decode_payload(bytes: &[u8]) -> Option<(u64, StoredRecord)> {
    let mut pos = 0usize;
    let hash = take_u64(bytes, &mut pos)?;
    let n_steps = take_u32(bytes, &mut pos)? as usize;
    let mut steps = Vec::with_capacity(n_steps.min(1024));
    for _ in 0..n_steps {
        let op = take_u32(bytes, &mut pos)? as usize;
        let stream = match take_u32(bytes, &mut pos)? {
            NO_STREAM => None,
            s => Some(s as usize - 1),
        };
        steps.push(Placement { op, stream });
    }
    let n_meas = take_u32(bytes, &mut pos)? as usize;
    let mut measurements = Vec::with_capacity(n_meas.min(1024));
    for _ in 0..n_meas {
        measurements.push(f64::from_bits(take_u64(bytes, &mut pos)?));
    }
    let mut q = [0f64; 5];
    for slot in &mut q {
        *slot = f64::from_bits(take_u64(bytes, &mut pos)?);
    }
    if pos != bytes.len() {
        return None; // trailing garbage inside a "valid" checksum frame
    }
    Some((
        hash,
        StoredRecord {
            traversal: Traversal { steps },
            result: BenchResult {
                measurements,
                percentiles: Percentiles {
                    p01: q[0],
                    p10: q[1],
                    p50: q[2],
                    p90: q[3],
                    p99: q[4],
                },
            },
        },
    ))
}

/// Frames a payload: `len:u32 | checksum:u64 | payload`.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u64(&mut frame, fnv1a(payload));
    frame.extend_from_slice(payload);
    frame
}

/// One FNV-1a fold step of the ledger-style fingerprint.
fn fold_fingerprint(h: &mut u64, hash: u64, time_bits: u64) {
    for v in [hash, time_bits] {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(FNV_PRIME);
        }
    }
}

impl ResultStore {
    /// Opens (creating if absent) the store in `dir`, recovering the
    /// committed record prefix from its segment. A torn tail — any
    /// suffix that is not a complete, checksum-valid, well-formed
    /// record — is truncated in place and reported via
    /// [`StoreStats::truncated_bytes`]; everything before it is loaded
    /// into the in-memory read path. A stale rotation temp file (crash
    /// between write and rename) is removed.
    pub fn open(dir: &Path) -> io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let seg = dir.join(SEGMENT_FILE);
        let tmp = rotation_tmp(&seg);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        let mut bytes = Vec::new();
        if seg.exists() {
            File::open(&seg)?.read_to_end(&mut bytes)?;
        }
        // A file too short for (or not matching) the magic is treated
        // as fully torn: recovery keeps zero records.
        let mut committed = if bytes.len() >= STORE_MAGIC.len() && bytes[..8] == STORE_MAGIC[..] {
            STORE_MAGIC.len()
        } else {
            0
        };
        let cache = StripedCache::new(64);
        let mut log = Vec::new();
        let mut fingerprint = FNV_OFFSET;
        if committed > 0 {
            let mut pos = committed;
            loop {
                let mut cursor = pos;
                let Some(len) = take_u32(&bytes, &mut cursor) else {
                    break;
                };
                let Some(checksum) = take_u64(&bytes, &mut cursor) else {
                    break;
                };
                let Some(payload) = bytes.get(cursor..cursor + len as usize) else {
                    break;
                };
                if fnv1a(payload) != checksum {
                    break;
                }
                let Some((hash, rec)) = decode_payload(payload) else {
                    break;
                };
                fold_fingerprint(&mut fingerprint, hash, rec.result.time().to_bits());
                cache.preload(hash, hash, rec);
                log.push(hash);
                pos = cursor + len as usize;
                committed = pos;
            }
        }
        let truncated_bytes = (bytes.len() - committed) as u64;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // the committed prefix must survive reopen
            .read(true)
            .write(true)
            .open(&seg)?;
        file.set_len(committed as u64)?;
        if committed == 0 {
            file.write_all(STORE_MAGIC)?;
        }
        // Append mode proper: position at the committed end.
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        let loaded = log.len() as u64;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            cache,
            writer: Mutex::new(Writer {
                file,
                log,
                fingerprint,
            }),
            loaded,
            truncated_bytes,
            appended: AtomicU64::new(0),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up the stored measurement of `t`, answering from the
    /// in-memory read path. Returns `None` (and counts a miss) when the
    /// traversal has not been committed — including the vanishingly
    /// unlikely case of a canonical-hash collision with a different
    /// committed traversal, which full-identity comparison rejects.
    pub fn lookup(&self, t: &Traversal) -> Option<BenchResult> {
        let hash = t.canonical_hash();
        let rec = self.cache.get(hash, &hash)?;
        (rec.traversal == *t).then_some(rec.result)
    }

    /// Appends one committed record: frames, checksums, and writes it
    /// to the segment, then publishes it to the read path. The frame is
    /// written with a single `write_all` and flushed, so a crash leaves
    /// at most one torn record — exactly what [`ResultStore::open`]
    /// recovers from.
    pub fn append(&self, t: &Traversal, result: &BenchResult) -> io::Result<()> {
        let hash = t.canonical_hash();
        let rec = StoredRecord {
            traversal: t.clone(),
            result: result.clone(),
        };
        let frame = encode_frame(&encode_payload(hash, &rec));
        let mut w = self.writer.lock().expect("store writer poisoned");
        w.file.write_all(&frame)?;
        w.file.flush()?;
        fold_fingerprint(&mut w.fingerprint, hash, result.time().to_bits());
        w.log.push(hash);
        drop(w);
        self.cache.preload(hash, hash, rec);
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of committed records (log order, duplicates included).
    pub fn len(&self) -> usize {
        self.writer.lock().expect("store writer poisoned").log.len()
    }

    /// True when nothing is committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ledger-style FNV-1a fingerprint over committed records in
    /// log order (canonical hash then median-time bits, byte by byte) —
    /// the same algorithm as the run ledger's record-set fingerprint,
    /// so a store whose log order matches a run's record order carries
    /// that run's exact fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.writer
            .lock()
            .expect("store writer poisoned")
            .fingerprint
    }

    /// The committed records in log order. Hash collisions (two
    /// committed traversals sharing a canonical hash) surface as
    /// repeated entries of the later record.
    pub fn records_in_order(&self) -> Vec<(u64, StoredRecord)> {
        let w = self.writer.lock().expect("store writer poisoned");
        w.log
            .iter()
            .filter_map(|&h| self.cache.get(h, &h).map(|r| (h, r)))
            .collect()
    }

    /// Lifetime counters: read-path hits/misses, records loaded at
    /// open, records appended since, and torn bytes dropped on open.
    pub fn stats(&self) -> StoreStats {
        let c = self.cache.stats();
        // `records_in_order` also goes through the cache; its probes are
        // all hits, so subtracting nothing keeps counters monotone and
        // meaningful (lookup misses still dominate the signal).
        StoreStats {
            hits: c.hits,
            misses: c.misses,
            loaded: self.loaded,
            appended: self.appended.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes,
        }
    }

    /// Atomically rewrites the segment, dropping all but the first
    /// record of any duplicated canonical hash: the new segment is
    /// written to a temp file, flushed, and `rename`d over the old one,
    /// so a crash at any point leaves a valid segment (old or new).
    /// Returns the number of records dropped. On the normal path —
    /// resumed shards never re-append stored traversals — this is a
    /// no-op rewrite and the fingerprint is unchanged.
    pub fn compact(&self) -> io::Result<u64> {
        let mut w = self.writer.lock().expect("store writer poisoned");
        let seg = self.dir.join(SEGMENT_FILE);
        let tmp = rotation_tmp(&seg);
        let mut kept_log = Vec::with_capacity(w.log.len());
        let mut fingerprint = FNV_OFFSET;
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        out.extend_from_slice(STORE_MAGIC);
        for &hash in &w.log {
            if !seen.insert(hash) {
                continue;
            }
            // peek, not get: a maintenance read must not count as a hit.
            let Some(rec) = self.cache.peek(hash, &hash) else {
                continue;
            };
            out.extend_from_slice(&encode_frame(&encode_payload(hash, &rec)));
            fold_fingerprint(&mut fingerprint, hash, rec.result.time().to_bits());
            kept_log.push(hash);
        }
        let dropped = (w.log.len() - kept_log.len()) as u64;
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &seg)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&seg)?;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        w.file = file;
        w.log = kept_log;
        w.fingerprint = fingerprint;
        Ok(dropped)
    }
}

/// The rotation temp path next to a segment.
fn rotation_tmp(seg: &Path) -> PathBuf {
    let mut os = seg.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dr-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn traversal(k: usize) -> Traversal {
        Traversal {
            steps: (0..3)
                .map(|i| Placement {
                    op: k + i,
                    stream: (i % 2 == 0).then_some(i),
                })
                .collect(),
        }
    }

    fn bench(t: f64) -> BenchResult {
        BenchResult {
            measurements: vec![t, t * 1.5, t * 0.5],
            percentiles: Percentiles {
                p01: t * 0.5,
                p10: t * 0.6,
                p50: t,
                p90: t * 1.4,
                p99: t * 1.5,
            },
        }
    }

    #[test]
    fn roundtrips_and_reopens_warm() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        for k in 0..5 {
            store
                .append(&traversal(k), &bench(1e-3 * (k + 1) as f64))
                .unwrap();
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.lookup(&traversal(2)), Some(bench(3e-3)));
        let fp = store.fingerprint();
        drop(store);
        let warm = ResultStore::open(&dir).unwrap();
        assert_eq!(warm.len(), 5);
        assert_eq!(warm.fingerprint(), fp);
        assert_eq!(warm.stats().loaded, 5);
        assert_eq!(warm.stats().truncated_bytes, 0);
        assert_eq!(warm.lookup(&traversal(4)), Some(bench(5e-3)));
        assert_eq!(warm.lookup(&traversal(9)), None);
        let s = warm.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_matches_ledger_algorithm() {
        let dir = tmp_dir("fp");
        let store = ResultStore::open(&dir).unwrap();
        let items: Vec<(Traversal, BenchResult)> = (0..4)
            .map(|k| (traversal(k), bench(2e-3 * (k + 1) as f64)))
            .collect();
        for (t, r) in &items {
            store.append(t, r).unwrap();
        }
        // Recompute with the documented algorithm.
        let mut h = FNV_OFFSET;
        for (t, r) in &items {
            fold_fingerprint(&mut h, t.canonical_hash(), r.time().to_bits());
        }
        assert_eq!(store.fingerprint(), h);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_never_propagated() {
        let dir = tmp_dir("torn");
        let store = ResultStore::open(&dir).unwrap();
        store.append(&traversal(0), &bench(1e-3)).unwrap();
        store.append(&traversal(1), &bench(2e-3)).unwrap();
        let fp2 = {
            let s = ResultStore::open(&tmp_dir("torn-ref")).unwrap();
            s.append(&traversal(0), &bench(1e-3)).unwrap();
            s.fingerprint()
        };
        drop(store);
        let seg = dir.join(SEGMENT_FILE);
        let len = std::fs::metadata(&seg).unwrap().len();
        // Tear 5 bytes off the final record.
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let recovered = ResultStore::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered.fingerprint(), fp2);
        assert_eq!(recovered.lookup(&traversal(0)), Some(bench(1e-3)));
        assert_eq!(recovered.lookup(&traversal(1)), None);
        assert!(recovered.stats().truncated_bytes > 0);
        // The truncation is durable: appending after recovery yields a
        // clean segment.
        recovered.append(&traversal(1), &bench(2e-3)).unwrap();
        drop(recovered);
        let clean = ResultStore::open(&dir).unwrap();
        assert_eq!(clean.len(), 2);
        assert_eq!(clean.stats().truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checksum_drops_the_tail() {
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        store.append(&traversal(0), &bench(1e-3)).unwrap();
        store.append(&traversal(1), &bench(2e-3)).unwrap();
        drop(store);
        let seg = dir.join(SEGMENT_FILE);
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip one bit in the last payload byte.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let recovered = ResultStore::open(&dir).unwrap();
        assert_eq!(
            recovered.len(),
            1,
            "checksum mismatch drops the tail record"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_recovers_to_empty() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SEGMENT_FILE), b"not a segment").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.stats().truncated_bytes, 13);
        store.append(&traversal(0), &bench(1e-3)).unwrap();
        drop(store);
        assert_eq!(ResultStore::open(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_rewrites_atomically_and_dedups() {
        let dir = tmp_dir("compact");
        let store = ResultStore::open(&dir).unwrap();
        for k in 0..3 {
            store.append(&traversal(k), &bench(1e-3)).unwrap();
        }
        // Manufacture a duplicate append (the API does not normally
        // produce one; the log still honors it).
        store.append(&traversal(1), &bench(1e-3)).unwrap();
        assert_eq!(store.len(), 4);
        let dropped = store.compact().unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(store.len(), 3);
        assert!(!rotation_tmp(&dir.join(SEGMENT_FILE)).exists());
        // The store stays usable after rotation and the rewrite is
        // durable.
        store.append(&traversal(7), &bench(4e-3)).unwrap();
        let fp = store.fingerprint();
        drop(store);
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.fingerprint(), fp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_rotation_tmp_is_removed_on_open() {
        let dir = tmp_dir("stale-tmp");
        let store = ResultStore::open(&dir).unwrap();
        store.append(&traversal(0), &bench(1e-3)).unwrap();
        drop(store);
        let tmp = rotation_tmp(&dir.join(SEGMENT_FILE));
        std::fs::write(&tmp, b"half-written rotation").unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(!tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_in_order_preserves_log_order() {
        let dir = tmp_dir("order");
        let store = ResultStore::open(&dir).unwrap();
        let ts: Vec<Traversal> = [3, 0, 2].iter().map(|&k| traversal(k)).collect();
        for (i, t) in ts.iter().enumerate() {
            store.append(t, &bench(1e-3 * (i + 1) as f64)).unwrap();
        }
        let recs = store.records_in_order();
        assert_eq!(recs.len(), 3);
        for ((h, r), t) in recs.iter().zip(&ts) {
            assert_eq!(*h, t.canonical_hash());
            assert_eq!(&r.traversal, t);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
