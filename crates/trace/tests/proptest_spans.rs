//! Property tests for the span store: arbitrary interleavings of lane
//! operations can never corrupt per-lane nesting, causal edges, or the
//! Chrome JSON export.

use dr_trace::{merge_chrome_json, SpanId, Tracer, PIPELINE_PID};
use proptest::prelude::*;

/// One scripted lane operation (decoded from a generated opcode).
#[derive(Clone, Copy, Debug)]
enum Op {
    Enter,
    Exit,
    Annotate,
    /// Enter a span that `follows_from` the most recent span anywhere.
    EnterLinked,
}

fn decode(code: u32) -> Op {
    match code % 4 {
        0 => Op::Enter,
        1 => Op::Exit,
        2 => Op::Annotate,
        _ => Op::EnterLinked,
    }
}

/// A script: `(lane, opcode)` pairs over up to 3 lanes.
fn scripts() -> impl Strategy<Value = Vec<(usize, u32)>> {
    collection::vec((0usize..3, 0u32..8), 1..150)
}

/// Replays a script against a live tracer, returning the tracer. All
/// lanes stay open-ended: spans left open model a crash mid-phase and
/// must still export cleanly.
fn replay(script: &[(usize, u32)]) -> Tracer {
    let tracer = Tracer::new();
    let mut lanes: Vec<_> = (0..3).map(|i| tracer.lane(&format!("lane-{i}"))).collect();
    let mut last_span: Option<SpanId> = None;
    for (i, &(lane, code)) in script.iter().enumerate() {
        let lane = &mut lanes[lane];
        match decode(code) {
            Op::Enter => last_span = lane.enter(&format!("op-{i}")).or(last_span),
            Op::Exit => {
                lane.exit();
            }
            Op::Annotate => lane.annotate("step", i),
            Op::EnterLinked => {
                let id = lane.enter(&format!("op-{i}"));
                if let Some(pred) = last_span {
                    lane.follows_from(pred);
                }
                last_span = id.or(last_span);
            }
        }
    }
    tracer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Spans nest per lane: every parent lives on the same lane, opens
    /// no later than its child, and (once closed) outlives it.
    #[test]
    fn spans_are_well_nested_per_lane(script in scripts()) {
        let tracer = replay(&script);
        let snap = tracer.snapshot();
        for s in &snap.spans {
            prop_assert!(s.lane < snap.lanes.len());
            prop_assert!(s.end_s.is_none_or(|e| e >= s.start_s));
            if let Some(p) = s.parent {
                let parent = &snap.spans[p.0 as usize];
                prop_assert_eq!(parent.lane, s.lane, "parent on another lane");
                prop_assert!(parent.start_s <= s.start_s);
                match (parent.end_s, s.end_s) {
                    (Some(pe), Some(se)) => prop_assert!(se <= pe),
                    // A closed parent cannot contain an open child.
                    (Some(_), None) => prop_assert!(false, "open child of closed parent"),
                    _ => {}
                }
            }
        }
    }

    /// Every `follows_from` edge resolves to recorded spans, and the
    /// predecessor was recorded no later than the successor.
    #[test]
    fn follows_edges_resolve(script in scripts()) {
        let snap = replay(&script).snapshot();
        for &(pred, succ) in &snap.follows {
            prop_assert!((pred.0 as usize) < snap.spans.len());
            prop_assert!((succ.0 as usize) < snap.spans.len());
            prop_assert!(pred.0 <= succ.0, "predecessor recorded after successor");
        }
    }

    /// The Chrome export of any script — alone or merged with another
    /// fragment — is syntactically valid JSON.
    #[test]
    fn chrome_export_is_valid_json(script in scripts()) {
        let tracer = replay(&script);
        let json = tracer.to_chrome_json(PIPELINE_PID, "dr pipeline");
        dr_obs::json::validate(&json).expect("chrome export must be valid JSON");
        let merged = merge_chrome_json(&[&json, "[]"]);
        dr_obs::json::validate(&merged).expect("merged export must be valid JSON");
    }

    /// Lanes driven from worker threads share one store without losing
    /// or corrupting spans: the store ends with exactly one closed span
    /// per thread plus the root, all well-formed.
    #[test]
    fn cross_thread_lanes_stay_consistent(workers in 1usize..6) {
        let tracer = Tracer::new();
        let mut main = tracer.lane("main");
        let root = main.enter("dispatch").unwrap();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mut lane = tracer.lane(&format!("worker-{w}"));
                std::thread::spawn(move || {
                    lane.enter("work");
                    lane.follows_from(root);
                    lane.annotate("worker", w);
                    lane.exit();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        main.exit();
        let snap = tracer.snapshot();
        prop_assert_eq!(snap.spans.len(), workers + 1);
        prop_assert_eq!(snap.follows.len(), workers);
        prop_assert!(snap.spans.iter().all(|s| s.end_s.is_some()));
        prop_assert!(snap.follows.iter().all(|&(p, _)| p == root));
        let json = tracer.to_chrome_json(PIPELINE_PID, "dr pipeline");
        dr_obs::json::validate(&json).expect("chrome export must be valid JSON");
    }
}
