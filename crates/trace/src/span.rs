//! Span store, tracer handle, and per-thread lanes.

use std::fmt::Display;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of a span within one [`Tracer`]'s store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

#[derive(Debug)]
struct SpanData {
    name: String,
    lane: usize,
    parent: Option<SpanId>,
    start_s: f64,
    end_s: Option<f64>,
    notes: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct State {
    lanes: Vec<String>,
    spans: Vec<SpanData>,
    /// `(predecessor, successor)` causal edges across lanes.
    follows: Vec<(SpanId, SpanId)>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// Shared handle to a span store. Clones share the same store; a tracer
/// built with [`Tracer::disabled`] makes every tracing call a no-op.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A live tracer with an empty span store.
    pub fn new() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A tracer whose every operation is a no-op. Traced code paths can
    /// accept a `&Tracer` unconditionally and stay zero-cost when off.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether spans are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since this tracer was created (0.0 when disabled).
    pub fn now_s(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Open a new lane (an independent span stack, shown as one thread
    /// row in the exported timeline). Lane handles are `Send` and may be
    /// moved into worker threads.
    pub fn lane(&self, name: &str) -> Lane {
        let lane = match &self.inner {
            Some(inner) => {
                let mut st = inner.state.lock().expect("tracer lock");
                st.lanes.push(name.to_string());
                st.lanes.len() - 1
            }
            None => 0,
        };
        Lane {
            tracer: self.clone(),
            lane,
            stack: Vec::new(),
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("tracer lock").spans.len(),
            None => 0,
        }
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock().expect("tracer lock");
                Snapshot {
                    lanes: st.lanes.clone(),
                    spans: st
                        .spans
                        .iter()
                        .enumerate()
                        .map(|(i, s)| Span {
                            id: SpanId(i as u64),
                            name: s.name.clone(),
                            lane: s.lane,
                            parent: s.parent,
                            start_s: s.start_s,
                            end_s: s.end_s,
                            notes: s.notes.clone(),
                        })
                        .collect(),
                    follows: st.follows.clone(),
                    now_s: inner.epoch.elapsed().as_secs_f64(),
                }
            }
            None => Snapshot {
                lanes: Vec::new(),
                spans: Vec::new(),
                follows: Vec::new(),
                now_s: 0.0,
            },
        }
    }

    /// Export the store as a Chrome trace-event JSON array under process
    /// id `pid` named `process_name` (see [`crate::chrome`]).
    pub fn to_chrome_json(&self, pid: u64, process_name: &str) -> String {
        crate::chrome::chrome_json(&self.snapshot(), pid, process_name)
    }
}

/// Read-only copy of a tracer's store, used by exporters and tests.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Lane names, indexed by `Span::lane`.
    pub lanes: Vec<String>,
    /// All spans in creation order (`Span::id` is the index).
    pub spans: Vec<Span>,
    /// `(predecessor, successor)` cross-lane causal edges.
    pub follows: Vec<(SpanId, SpanId)>,
    /// Capture time in seconds since the tracer epoch (used as the end
    /// time of spans still open at export).
    pub now_s: f64,
}

/// One recorded span (snapshot view).
#[derive(Clone, Debug)]
pub struct Span {
    /// Identifier (index into [`Snapshot::spans`]).
    pub id: SpanId,
    /// Span name.
    pub name: String,
    /// Owning lane index.
    pub lane: usize,
    /// Enclosing span on the same lane, if any.
    pub parent: Option<SpanId>,
    /// Start time, seconds since the tracer epoch.
    pub start_s: f64,
    /// End time; `None` while the span is still open.
    pub end_s: Option<f64>,
    /// Ordered key/value annotations.
    pub notes: Vec<(String, String)>,
}

/// A thread-affine span stack. All mutation goes through a lane, which
/// guarantees per-lane well-nesting by construction: `enter` pushes,
/// `exit` pops, and the parent of a new span is whatever is on top.
#[derive(Debug)]
pub struct Lane {
    tracer: Tracer,
    lane: usize,
    stack: Vec<SpanId>,
}

impl Lane {
    /// Whether this lane records anything.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Lane index (the `tid` row in the exported timeline).
    pub fn index(&self) -> usize {
        self.lane
    }

    /// Open a span named `name` as a child of the current span. Returns
    /// `None` when the tracer is disabled.
    pub fn enter(&mut self, name: &str) -> Option<SpanId> {
        let inner = self.tracer.inner.as_ref()?;
        let start_s = inner.epoch.elapsed().as_secs_f64();
        let mut st = inner.state.lock().expect("tracer lock");
        let id = SpanId(st.spans.len() as u64);
        st.spans.push(SpanData {
            name: name.to_string(),
            lane: self.lane,
            parent: self.stack.last().copied(),
            start_s,
            end_s: None,
            notes: Vec::new(),
        });
        self.stack.push(id);
        Some(id)
    }

    /// Close the innermost open span. A no-op (returning `None`) when the
    /// stack is empty or the tracer is disabled, so arbitrary enter/exit
    /// interleavings can never corrupt the store.
    pub fn exit(&mut self) -> Option<SpanId> {
        let inner = self.tracer.inner.as_ref()?;
        let id = self.stack.pop()?;
        let end_s = inner.epoch.elapsed().as_secs_f64();
        let mut st = inner.state.lock().expect("tracer lock");
        st.spans[id.0 as usize].end_s = Some(end_s);
        Some(id)
    }

    /// Open a span closed automatically when the returned guard drops.
    pub fn span(&mut self, name: &str) -> SpanGuard<'_> {
        let id = self.enter(name);
        SpanGuard { lane: self, id }
    }

    /// The innermost open span, if any.
    pub fn current(&self) -> Option<SpanId> {
        self.stack.last().copied()
    }

    /// Nesting depth of open spans on this lane.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Attach a key/value annotation to the innermost open span. No-op
    /// when disabled or when no span is open.
    pub fn annotate(&mut self, key: &str, value: impl Display) {
        let Some(inner) = self.tracer.inner.as_ref() else {
            return;
        };
        let Some(id) = self.stack.last().copied() else {
            return;
        };
        let mut st = inner.state.lock().expect("tracer lock");
        st.spans[id.0 as usize]
            .notes
            .push((key.to_string(), value.to_string()));
    }

    /// Record that the innermost open span causally follows
    /// `predecessor` (typically a span on another lane). Exported as a
    /// Chrome flow arrow. No-op when disabled or when no span is open.
    pub fn follows_from(&mut self, predecessor: SpanId) {
        let Some(inner) = self.tracer.inner.as_ref() else {
            return;
        };
        let Some(current) = self.stack.last().copied() else {
            return;
        };
        let mut st = inner.state.lock().expect("tracer lock");
        if (predecessor.0 as usize) < st.spans.len() {
            st.follows.push((predecessor, current));
        }
    }
}

/// RAII guard returned by [`Lane::span`]; exits the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    lane: &'a mut Lane,
    id: Option<SpanId>,
}

impl SpanGuard<'_> {
    /// Identifier of the guarded span (`None` when tracing is disabled).
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Annotate the guarded span.
    pub fn annotate(&mut self, key: &str, value: impl Display) {
        self.lane.annotate(key, value);
    }

    /// Record a causal predecessor of the guarded span.
    pub fn follows_from(&mut self, predecessor: SpanId) {
        self.lane.follows_from(predecessor);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.id.is_some() {
            self.lane.exit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_parent_links() {
        let tracer = Tracer::new();
        let mut lane = tracer.lane("main");
        let a = lane.enter("outer").unwrap();
        let b = lane.enter("inner").unwrap();
        lane.annotate("k", 7);
        lane.exit();
        lane.exit();
        assert_eq!(lane.depth(), 0);
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[a.0 as usize].parent, None);
        assert_eq!(snap.spans[b.0 as usize].parent, Some(a));
        assert_eq!(
            snap.spans[b.0 as usize].notes,
            vec![("k".into(), "7".into())]
        );
        let inner = &snap.spans[b.0 as usize];
        let outer = &snap.spans[a.0 as usize];
        assert!(outer.start_s <= inner.start_s);
        assert!(inner.end_s.unwrap() <= outer.end_s.unwrap());
    }

    #[test]
    fn guard_closes_on_drop() {
        let tracer = Tracer::new();
        let mut lane = tracer.lane("main");
        {
            let mut g = lane.span("scoped");
            g.annotate("x", "y");
            assert!(g.id().is_some());
        }
        assert_eq!(lane.depth(), 0);
        assert!(tracer.snapshot().spans[0].end_s.is_some());
    }

    #[test]
    fn unbalanced_exit_is_noop() {
        let tracer = Tracer::new();
        let mut lane = tracer.lane("main");
        assert!(lane.exit().is_none());
        lane.enter("a");
        assert!(lane.exit().is_some());
        assert!(lane.exit().is_none());
    }

    #[test]
    fn follows_from_links_across_lanes() {
        let tracer = Tracer::new();
        let mut main = tracer.lane("main");
        let root = main.enter("dispatch").unwrap();
        main.exit();
        let mut worker = tracer.lane("worker-0");
        worker.enter("chunk");
        worker.follows_from(root);
        worker.exit();
        let snap = tracer.snapshot();
        assert_eq!(snap.follows.len(), 1);
        assert_eq!(snap.follows[0].0, root);
        assert_eq!(snap.lanes, vec!["main".to_string(), "worker-0".to_string()]);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        let mut lane = tracer.lane("main");
        assert!(lane.enter("a").is_none());
        lane.annotate("k", "v");
        lane.follows_from(SpanId(0));
        assert!(lane.exit().is_none());
        assert_eq!(tracer.span_count(), 0);
        assert!(!tracer.is_enabled());
        let mut g = lane.span("scoped");
        assert!(g.id().is_none());
        g.annotate("k", "v");
        drop(g);
        assert_eq!(tracer.snapshot().spans.len(), 0);
    }

    #[test]
    fn lanes_from_threads_share_one_store() {
        let tracer = Tracer::new();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let mut lane = tracer.lane(&format!("worker-{w}"));
                std::thread::spawn(move || {
                    let mut g = lane.span("work");
                    g.annotate("worker", w);
                    drop(g);
                    lane
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.lanes.len(), 4);
        assert!(snap.spans.iter().all(|s| s.end_s.is_some()));
    }
}
