//! Causal span tracing for the design-rule pipeline (std-only).
//!
//! The model is deliberately small:
//!
//! * A [`Tracer`] owns the span store behind an `Arc<Mutex<_>>` and is
//!   cheap to clone. A tracer built with [`Tracer::disabled`] turns every
//!   operation into a no-op (no clock reads, no allocation), so traced
//!   code paths cost nothing when tracing is off.
//! * A [`Lane`] is a thread-affine handle with its own span stack
//!   (typically one lane per worker thread, evaluator, or logical
//!   actor). `enter`/`exit` maintain strict nesting within a lane, which
//!   is what makes the exported timeline well-formed; parent links are
//!   derived from the stack. Lanes are `Send` so they can ride inside
//!   per-worker state through `dr-par`.
//! * [`Lane::follows_from`] records a cross-lane causal edge (e.g. a
//!   work item handed from the pipeline's main lane to a worker lane),
//!   exported as a Chrome flow event.
//! * Spans carry ordered key/value annotations (cache hits, eval seeds,
//!   lint verdicts, fault counters) attached via [`Lane::annotate`].
//!
//! Two exporters live in [`chrome`]: a Chrome/Perfetto trace-event JSON
//! writer ([`Tracer::to_chrome_json`]) and [`chrome::merge_chrome_json`],
//! which splices several trace-event fragments (the pipeline's own spans
//! plus `dr_sim::Trace::to_chrome_json` rank/stream timelines) into one
//! file so "the search" and "what it searched" share a timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod span;

pub use chrome::{merge_chrome_json, PIPELINE_PID};
pub use span::{Lane, Snapshot, Span, SpanGuard, SpanId, Tracer};
