//! Chrome/Perfetto trace-event JSON export and fragment merging.
//!
//! The exporter emits the same flavour of trace-event array that
//! `dr_sim::Trace::to_chrome_json` produces for simulated programs:
//! `"M"` metadata records naming the process and one thread row per
//! lane, `"X"` complete-duration records for spans (with annotations in
//! `args`), and `"s"`/`"f"` flow records for `follows_from` edges.
//!
//! Simulated timelines use the MPI rank as the process id, so the
//! pipeline's own spans are exported under [`PIPELINE_PID`] — far above
//! any plausible rank — and [`merge_chrome_json`] splices both into one
//! array: Perfetto then shows "the search" and "what it searched" as
//! separate process groups on a shared clock.

use crate::span::{Snapshot, Span, SpanId};
use dr_obs::json;

/// Process id given to the pipeline's own spans in merged traces, far
/// above any simulated MPI rank (which use `pid = rank`).
pub const PIPELINE_PID: u64 = 1_000_000;

fn span_end_s(s: &Span, now_s: f64) -> f64 {
    s.end_s.unwrap_or(now_s).max(s.start_s)
}

/// Render a snapshot as a Chrome trace-event JSON array.
///
/// Times are exported in microseconds since the tracer epoch. Spans
/// still open at capture time are drawn up to the capture instant.
pub fn chrome_json(snap: &Snapshot, pid: u64, process_name: &str) -> String {
    let mut recs: Vec<String> = Vec::with_capacity(snap.spans.len() + snap.lanes.len() + 2);
    recs.push(format!(
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
         \"args\": {{\"name\": \"{}\"}}}}",
        json::escape(process_name)
    ));
    for (tid, lane) in snap.lanes.iter().enumerate() {
        recs.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            json::escape(lane)
        ));
    }
    for s in &snap.spans {
        let ts = s.start_s * 1e6;
        let dur = (span_end_s(s, snap.now_s) - s.start_s) * 1e6;
        let args = s
            .notes
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json::escape(k), json::escape(v)))
            .collect::<Vec<_>>()
            .join(", ");
        recs.push(format!(
            "{{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": {pid}, \
             \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
            json::escape(&s.name),
            s.lane,
            json::number(ts),
            json::number(dur),
        ));
    }
    for (flow_id, (from, to)) in snap.follows.iter().enumerate() {
        let (Some(src), Some(dst)) = (span_of(snap, *from), span_of(snap, *to)) else {
            continue;
        };
        // Flow arrows bind to the slice enclosing `ts` on the given
        // track: depart from the predecessor's end, land on the
        // successor's start.
        let depart = (span_end_s(src, snap.now_s) * 1e6).max(src.start_s * 1e6);
        recs.push(format!(
            "{{\"name\": \"follows\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": {flow_id}, \
             \"pid\": {pid}, \"tid\": {}, \"ts\": {}}}",
            src.lane,
            json::number(depart),
        ));
        recs.push(format!(
            "{{\"name\": \"follows\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \
             \"id\": {flow_id}, \"pid\": {pid}, \"tid\": {}, \"ts\": {}}}",
            dst.lane,
            json::number(dst.start_s * 1e6),
        ));
    }
    format!("[{}]", recs.join(",\n "))
}

fn span_of(snap: &Snapshot, id: SpanId) -> Option<&Span> {
    snap.spans.get(id.0 as usize)
}

/// Splice several Chrome trace-event JSON arrays into one. Each
/// fragment must be a JSON array (possibly empty); the result is a
/// single array holding every record, in fragment order.
pub fn merge_chrome_json(fragments: &[&str]) -> String {
    let mut bodies: Vec<&str> = Vec::with_capacity(fragments.len());
    for frag in fragments {
        let t = frag.trim();
        let inner = t
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .unwrap_or(t)
            .trim();
        if !inner.is_empty() {
            bodies.push(inner);
        }
    }
    format!("[{}]", bodies.join(",\n "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        let mut main = tracer.lane("main");
        let root = main.enter("pipeline").unwrap();
        main.annotate("strategy", "mcts");
        let mut worker = tracer.lane("worker-0");
        let mut g = worker.span("chunk");
        g.follows_from(root);
        g.annotate("first", 0);
        drop(g);
        main.exit();
        tracer
    }

    #[test]
    fn export_is_valid_json_with_flows() {
        let out = sample_tracer().to_chrome_json(PIPELINE_PID, "dr pipeline");
        json::validate(&out).expect("valid chrome json");
        assert!(out.contains("\"ph\": \"X\""));
        assert!(out.contains("\"ph\": \"s\""));
        assert!(out.contains("\"ph\": \"f\""));
        assert!(out.contains("\"name\": \"worker-0\""));
        assert!(out.contains("\"strategy\": \"mcts\""));
        assert!(out.contains(&format!("\"pid\": {PIPELINE_PID}")));
    }

    #[test]
    fn open_spans_export_with_capture_end() {
        let tracer = Tracer::new();
        let mut lane = tracer.lane("main");
        lane.enter("still-open");
        let out = tracer.to_chrome_json(1, "p");
        json::validate(&out).expect("valid chrome json");
        assert!(out.contains("\"name\": \"still-open\""));
    }

    #[test]
    fn merge_concatenates_fragments() {
        let a = sample_tracer().to_chrome_json(PIPELINE_PID, "dr pipeline");
        let b = "[{\"name\": \"kernel\", \"ph\": \"X\", \"pid\": 0, \"tid\": 1, \
                  \"ts\": 0, \"dur\": 5}]";
        let merged = merge_chrome_json(&[&a, b, "[]", "  "]);
        json::validate(&merged).expect("valid merged json");
        assert!(merged.contains("\"name\": \"kernel\""));
        assert!(merged.contains("\"name\": \"pipeline\""));
        assert_eq!(merged.matches('[').count(), 1 + a.matches('[').count() - 1);
    }

    #[test]
    fn merge_of_empties_is_empty_array() {
        assert_eq!(merge_chrome_json(&[]), "[]");
        assert_eq!(merge_chrome_json(&["[]", "[ ]"]), "[]");
    }
}
