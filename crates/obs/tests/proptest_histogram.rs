//! Property tests for the histogram's percentile math.

use dr_obs::Histogram;
use proptest::prelude::*;

/// Arbitrary finite samples spanning several orders of magnitude.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    collection::vec(1e-6f64..1e3, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_stay_within_observed_range(
        xs in samples(),
        q in 0f64..=1.0,
    ) {
        let mut h = Histogram::exponential(1e-7, 10.0, 12);
        for &x in &xs {
            h.record(x);
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p = h.percentile(q).expect("non-empty histogram");
        prop_assert!(p >= lo && p <= hi, "p{q} = {p} outside [{lo}, {hi}]");
    }

    #[test]
    fn percentiles_are_monotone_in_q(xs in samples()) {
        let mut h = Histogram::linear(0.0, 1e3, 32);
        for &x in &xs {
            h.record(x);
        }
        let ps: Vec<f64> = (0..=10)
            .map(|i| h.percentile(i as f64 / 10.0).unwrap())
            .collect();
        for w in ps.windows(2) {
            prop_assert!(w[1] >= w[0], "percentiles not monotone: {ps:?}");
        }
    }

    #[test]
    fn extreme_quantiles_hit_min_and_max(xs in samples()) {
        let mut h = Histogram::exponential(1e-7, 10.0, 12);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.percentile(0.0), h.min());
        prop_assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn count_and_sum_track_recorded_samples(xs in samples()) {
        let mut h = Histogram::linear(0.0, 10.0, 8);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let bucket_total: u64 = h.buckets().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_total, xs.len() as u64);
        let expect: f64 = xs.iter().sum();
        prop_assert!((h.sum() - expect).abs() <= 1e-9 * expect.abs().max(1.0));
    }

    #[test]
    fn non_finite_samples_are_ignored(xs in collection::vec(0f64..10.0, 1..50)) {
        let mut h = Histogram::linear(0.0, 10.0, 8);
        for &x in &xs {
            h.record(x);
        }
        let before = (h.count(), h.sum(), h.percentile(0.5));
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        prop_assert_eq!(before, (h.count(), h.sum(), h.percentile(0.5)));
    }
}
