//! Wall-clock stopwatches and named phase timers.

use std::time::Instant;

use crate::json;

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds since `start`.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Accumulated wall-clock time per named phase, in insertion order.
///
/// Phases are the coarse pipeline stages (explore, label, featurize,
/// train, rules); repeated [`Phases::add`] calls with the same name
/// accumulate into one entry.
#[derive(Debug, Clone, Default)]
pub struct Phases {
    entries: Vec<(String, f64)>,
}

impl Phases {
    /// Creates an empty phase table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and accumulates its wall-clock duration under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.add(name, sw.elapsed());
        out
    }

    /// Accumulates `seconds` under `name`.
    pub fn add(&mut self, name: &str, seconds: f64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 += seconds;
        } else {
            self.entries.push((name.to_string(), seconds));
        }
    }

    /// Accumulated seconds for `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Sum over all phases.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, s)| s).sum()
    }

    /// `(name, seconds)` pairs in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Renders as a JSON object `{name: seconds, ...}`.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .entries
            .iter()
            .map(|(n, s)| format!("\"{}\":{}", json::escape(n), json::number(*s)))
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    /// Renders a fixed-width text table with a share-of-total column.
    pub fn render_text(&self) -> String {
        let total = self.total();
        let mut out = String::new();
        for (name, secs) in &self.entries {
            let share = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {name:<12} {:>10.3} ms  {share:>5.1}%\n",
                secs * 1e3
            ));
        }
        out.push_str(&format!("  {:<12} {:>10.3} ms\n", "total", total * 1e3));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut p = Phases::new();
        p.add("explore", 1.0);
        p.add("train", 0.5);
        p.add("explore", 0.25);
        assert_eq!(p.get("explore"), Some(1.25));
        assert_eq!(p.get("train"), Some(0.5));
        assert_eq!(p.get("rules"), None);
        assert_eq!(p.total(), 1.75);
        let names: Vec<_> = p.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["explore", "train"]);
    }

    #[test]
    fn time_returns_the_closure_value() {
        let mut p = Phases::new();
        let v = p.time("work", || 42);
        assert_eq!(v, 42);
        assert!(p.get("work").unwrap() >= 0.0);
    }

    #[test]
    fn json_and_text_render() {
        let mut p = Phases::new();
        p.add("explore", 0.002);
        p.add("label", 0.001);
        crate::json::validate(&p.to_json()).unwrap();
        let text = p.render_text();
        assert!(text.contains("explore"));
        assert!(text.contains("total"));
    }
}
