//! `dr-obs` — observability core for the design-rules pipeline.
//!
//! Zero-dependency metrics primitives threaded through every layer of
//! the workspace: [`metrics`] (counters, gauges, fixed-bucket
//! histograms with percentile queries), [`timer`] (stopwatches and
//! named phase timers), [`json`] (hand-rolled JSON formatting plus
//! a syntax validator used by tests that assert artifacts are
//! well-formed), [`events`] (the `dr-events/v1` structured NDJSON
//! event stream behind `--progress`/`--events`), and [`expose`]
//! (Prometheus-style text exposition of metric snapshots, the
//! `--metrics-text` surface).
//!
//! The metrics primitives are single-threaded by design, matching the
//! simulator and the search loop: plain structs mutated through
//! `&mut self`, no global registries. The one deliberate exception is
//! [`events::EventSink`], which crosses worker threads and therefore
//! owns the crate's only atomics (a shared sequence counter and a
//! mutex-guarded writer).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod timer;

pub use events::{Event, EventObserver, EventSink, Field, SharedBuf, EVENTS_SCHEMA};
pub use expose::TextExposition;
pub use metrics::{Counter, Gauge, Histogram};
pub use timer::{Phases, Stopwatch};

/// Writes one CSV row, quoting fields that contain commas, quotes, or
/// newlines (RFC 4180 style).
pub fn csv_row(fields: &[String]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_quotes_when_needed() {
        assert_eq!(csv_row(&["a".into(), "b".into()]), "a,b\n");
        assert_eq!(
            csv_row(&["a,b".into(), "c\"d".into()]),
            "\"a,b\",\"c\"\"d\"\n"
        );
    }
}
