//! Structured event stream (`dr-events/v1`).
//!
//! A run that wants live observability builds one [`EventSink`] and
//! clones it into every layer that has something to say: pipeline
//! phases, pool workers, MCTS iterations, simulator evaluations. Each
//! [`EventSink::emit`] call assigns the next **monotone sequence
//! number** from a shared atomic counter, stamps the event with seconds
//! since the sink was created, and fans the event out to two optional
//! destinations:
//!
//! * an NDJSON **writer** — one self-contained JSON object per line,
//!   each carrying the schema tag and the run id, so a stream file can
//!   be joined against the run ledger after the fact;
//! * an in-process **observer** — the live `--progress` renderer
//!   subscribes here and never has to re-parse its own JSON.
//!
//! Emission must never perturb results: producers only *read* pipeline
//! state, and the high-rate producers (MCTS iterations, evaluations)
//! sample — see [`sampled`] — so the overhead stays bounded. A sink
//! with neither writer nor observer reports [`EventSink::is_enabled`]
//! `false` and producers skip building events entirely.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// Schema tag written into every event line.
pub const EVENTS_SCHEMA: &str = "dr-events/v1";

/// One typed field value of an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned counter-like value.
    U64(u64),
    /// A floating-point measurement (seconds, rates); NaN serializes
    /// as `null` like everywhere else in the workspace.
    F64(f64),
    /// A short label (phase name, traversal hash).
    Str(String),
    /// A flag.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl Field {
    fn to_json(&self) -> String {
        match self {
            Field::U64(v) => v.to_string(),
            Field::F64(v) => json::number(*v),
            Field::Str(s) => format!("\"{}\"", json::escape(s)),
            Field::Bool(b) => b.to_string(),
        }
    }
}

/// One emitted event: a kind, a monotone sequence number, seconds since
/// the sink was created, and a flat list of named fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number, unique within the sink.
    pub seq: u64,
    /// Seconds since the sink was created (monotonic clock).
    pub t_s: f64,
    /// Event kind, e.g. `"phase-start"`, `"eval"`, `"mcts-iter"`.
    pub kind: String,
    /// Named payload fields, in emission order.
    pub fields: Vec<(String, Field)>,
}

impl Event {
    /// One NDJSON line (no trailing newline) carrying the schema tag
    /// and the owning run's id.
    pub fn to_json(&self, run_id: &str) -> String {
        let mut out = format!(
            "{{\"schema\":\"{}\",\"run\":\"{}\",\"seq\":{},\"t_s\":{},\"kind\":\"{}\"",
            EVENTS_SCHEMA,
            json::escape(run_id),
            self.seq,
            json::number(self.t_s),
            json::escape(&self.kind),
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":{}", json::escape(k), v.to_json()));
        }
        out.push('}');
        out
    }

    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// In-process subscriber: receives every event as it is emitted,
/// possibly from several worker threads at once.
pub trait EventObserver: Send + Sync {
    /// Called once per emitted event, after the sequence number is
    /// assigned.
    fn on_event(&self, event: &Event);
}

struct SinkInner {
    run_id: String,
    seq: AtomicU64,
    start: Instant,
    writer: Option<Mutex<Box<dyn Write + Send>>>,
    observer: Option<Box<dyn EventObserver>>,
}

/// Shared, thread-safe event sink. Cloning is cheap (an `Arc` bump);
/// all clones share one sequence counter, one clock, and one writer.
#[derive(Clone)]
pub struct EventSink {
    inner: Arc<SinkInner>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("run_id", &self.inner.run_id)
            .field("seq", &self.seq())
            .field("writer", &self.inner.writer.is_some())
            .field("observer", &self.inner.observer.is_some())
            .finish()
    }
}

impl EventSink {
    /// A sink with no destinations yet. `run_id` should match the run
    /// ledger's provenance so streams and ledger entries can be joined.
    pub fn new(run_id: &str) -> Self {
        EventSink {
            inner: Arc::new(SinkInner {
                run_id: run_id.to_string(),
                seq: AtomicU64::new(0),
                start: Instant::now(),
                writer: None,
                observer: None,
            }),
        }
    }

    /// Adds an NDJSON writer (builder style, before the sink is
    /// cloned/shared).
    pub fn with_writer(mut self, w: Box<dyn Write + Send>) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("with_writer must be called before the sink is shared")
            .writer = Some(Mutex::new(w));
        self
    }

    /// Adds an in-process observer (builder style, before the sink is
    /// cloned/shared).
    pub fn with_observer(mut self, o: Box<dyn EventObserver>) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("with_observer must be called before the sink is shared")
            .observer = Some(o);
        self
    }

    /// The run id every line is stamped with.
    pub fn run_id(&self) -> &str {
        &self.inner.run_id
    }

    /// Events emitted so far.
    pub fn seq(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Whether any destination is attached. Producers of high-rate
    /// events should skip building payloads when this is `false`.
    pub fn is_enabled(&self) -> bool {
        self.inner.writer.is_some() || self.inner.observer.is_some()
    }

    /// Emits one event: assigns the next sequence number, stamps the
    /// monotonic time, writes the NDJSON line, and notifies the
    /// observer.
    pub fn emit(&self, kind: &str, fields: &[(&str, Field)]) {
        if !self.is_enabled() {
            // Still advance the counter so `seq()` counts suppressed
            // emissions? No: a disabled sink is a pure no-op, matching
            // the disabled-tracer convention.
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            t_s: self.inner.start.elapsed().as_secs_f64(),
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        if let Some(w) = &self.inner.writer {
            let line = event.to_json(&self.inner.run_id);
            let mut w = w.lock().expect("event writer poisoned");
            // Event loss must never fail the run; ignore write errors.
            let _ = writeln!(w, "{line}");
        }
        if let Some(o) = &self.inner.observer {
            o.on_event(&event);
        }
    }

    /// Flushes the writer, if any.
    pub fn flush(&self) {
        if let Some(w) = &self.inner.writer {
            let _ = w.lock().expect("event writer poisoned").flush();
        }
    }
}

/// Whether iteration `i` (1-based) of a high-rate producer should emit,
/// given a sampling period: the first iteration always emits, then
/// every `every`-th. The same convention the MCTS tracer uses, shared
/// here so all producers sample identically.
pub fn sampled(i: usize, every: usize) -> bool {
    let every = every.max(1);
    i == 1 || i.is_multiple_of(every)
}

/// An in-memory `Write` target shareable across threads; tests and the
/// CLI use it to capture an event stream without touching the
/// filesystem.
#[derive(Clone, Default, Debug)]
pub struct SharedBuf {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The captured bytes, decoded lossily as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = EventSink::new("run-x");
        assert!(!sink.is_enabled());
        sink.emit("phase-start", &[("phase", "explore".into())]);
        assert_eq!(sink.seq(), 0);
    }

    #[test]
    fn lines_are_valid_json_with_monotone_seq() {
        let buf = SharedBuf::new();
        let sink = EventSink::new("run-1").with_writer(Box::new(buf.clone()));
        sink.emit("phase-start", &[("phase", "explore".into())]);
        sink.emit(
            "eval",
            &[
                ("count", 17usize.into()),
                ("time_s", 1.5e-4.into()),
                ("hash", "00ab".into()),
                ("ok", true.into()),
            ],
        );
        sink.emit("nan-field", &[("t", f64::NAN.into())]);
        sink.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}"));
            assert_eq!(
                v.get("schema").and_then(json::Value::as_str),
                Some(EVENTS_SCHEMA)
            );
            assert_eq!(v.get("run").and_then(json::Value::as_str), Some("run-1"));
            assert_eq!(v.get("seq").and_then(json::Value::as_u64), Some(i as u64));
            assert!(v.get("t_s").and_then(json::Value::as_f64).unwrap() >= 0.0);
        }
        let eval = json::parse(lines[1]).unwrap();
        assert_eq!(eval.get("count").and_then(json::Value::as_u64), Some(17));
        assert_eq!(eval.get("ok").and_then(json::Value::as_bool), Some(true));
        assert!(json::parse(lines[2]).unwrap().get("t").unwrap().is_null());
    }

    #[test]
    fn clones_share_one_sequence_across_threads() {
        let buf = SharedBuf::new();
        let sink = EventSink::new("run-2").with_writer(Box::new(buf.clone()));
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..25u64 {
                        sink.emit("tick", &[("worker", w.into()), ("i", i.into())]);
                    }
                });
            }
        });
        assert_eq!(sink.seq(), 100);
        let text = buf.contents();
        let mut seqs: Vec<u64> = text
            .lines()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("seq")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn observer_sees_every_event() {
        struct Count(AtomicU64);
        impl EventObserver for Count {
            fn on_event(&self, event: &Event) {
                assert!(!event.kind.is_empty());
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Count(AtomicU64::new(0)));
        struct Fwd(Arc<Count>);
        impl EventObserver for Fwd {
            fn on_event(&self, event: &Event) {
                self.0.on_event(event);
            }
        }
        let sink = EventSink::new("run-3").with_observer(Box::new(Fwd(counter.clone())));
        assert!(sink.is_enabled());
        for _ in 0..7 {
            sink.emit("tick", &[]);
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn sampling_keeps_first_and_every_nth() {
        let hits: Vec<usize> = (1..=32).filter(|&i| sampled(i, 8)).collect();
        assert_eq!(hits, vec![1, 8, 16, 24, 32]);
        assert!(sampled(1, 0), "period 0 clamps to 1");
        assert!((1..=5).all(|i| sampled(i, 1)));
    }

    #[test]
    fn event_field_lookup() {
        let e = Event {
            seq: 0,
            t_s: 0.0,
            kind: "x".into(),
            fields: vec![("a".into(), Field::U64(1))],
        };
        assert_eq!(e.field("a"), Some(&Field::U64(1)));
        assert_eq!(e.field("b"), None);
    }
}
