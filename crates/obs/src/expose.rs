//! Prometheus-style text exposition (format 0.0.4) for the metrics
//! primitives.
//!
//! The crate deliberately has no global registry — metrics live in the
//! structs that use them — so exposition is a push-style builder: the
//! run-end code walks whatever it wants exported and renders one
//! snapshot. The output is the standard `text/plain; version=0.0.4`
//! shape (`# HELP` / `# TYPE` headers, `_bucket{le=...}` /`_sum` /
//! `_count` series for histograms) so a future `dr-serve` scrape
//! endpoint can return it unchanged.

use crate::metrics::{Counter, Gauge, Histogram};

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders one float the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// spelled out, integers without a fraction).
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn merge_labels<'a>(
    labels: &[(&'a str, &'a str)],
    extra: (&'a str, &'a str),
) -> Vec<(&'a str, &'a str)> {
    let mut all = labels.to_vec();
    all.push(extra);
    all
}

/// Builds one Prometheus text-format snapshot.
///
/// `# HELP`/`# TYPE` headers are emitted once per metric family, so the
/// same name may be exposed repeatedly with different labels (one
/// series per shard, say) and the output stays parseable.
#[derive(Debug, Default)]
pub struct TextExposition {
    out: String,
    headered: Vec<String>,
}

impl TextExposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        if self.headered.iter().any(|h| h == name) {
            return;
        }
        self.headered.push(name.to_string());
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Exposes a counter series.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], c: &Counter) {
        self.value(name, help, "counter", labels, c.get() as f64);
    }

    /// Exposes a gauge series.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], g: &Gauge) {
        self.value(name, help, "gauge", labels, g.get());
    }

    /// Exposes a raw value as the given metric kind (`counter` or
    /// `gauge`) — for quantities tracked outside the metric structs.
    pub fn value(&mut self, name: &str, help: &str, kind: &str, labels: &[(&str, &str)], v: f64) {
        self.header(name, kind, help);
        self.sample(name, labels, &number(v));
    }

    /// Exposes a histogram as cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`, the standard Prometheus shape.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.header(name, "histogram", help);
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        for (bound, count) in h.buckets() {
            cum += count;
            let le = number(bound);
            let all = merge_labels(labels, ("le", &le));
            self.sample(&bucket, &all, &cum.to_string());
        }
        self.sample(&format!("{name}_sum"), labels, &number(h.sum()));
        self.sample(&format!("{name}_count"), labels, &h.count().to_string());
    }

    /// The accumulated exposition text.
    pub fn render(&self) -> &str {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_values_expose_with_labels() {
        let mut c = Counter::new();
        c.add(7);
        let mut g = Gauge::new();
        g.set(2.5);
        let mut x = TextExposition::new();
        x.counter("dr_evals_total", "Design points evaluated.", &[], &c);
        x.gauge("dr_tree_size", "MCTS tree size.", &[("shard", "0")], &g);
        x.value("dr_rate", "Eval rate.", "gauge", &[("shard", "1")], 12.0);
        let text = x.render();
        assert!(text.contains("# HELP dr_evals_total Design points evaluated.\n"));
        assert!(text.contains("# TYPE dr_evals_total counter\n"));
        assert!(text.contains("dr_evals_total 7\n"));
        assert!(text.contains("dr_tree_size{shard=\"0\"} 2.5\n"));
        assert!(text.contains("dr_rate{shard=\"1\"} 12\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_with_inf() {
        let mut h = Histogram::new(vec![0.1, 1.0]);
        h.record(0.05);
        h.record(0.5);
        h.record(5.0);
        let mut x = TextExposition::new();
        x.histogram("dr_eval_seconds", "Per-eval wall time.", &[], &h);
        let text = x.render();
        assert!(text.contains("# TYPE dr_eval_seconds histogram\n"));
        assert!(text.contains("dr_eval_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("dr_eval_seconds_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("dr_eval_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dr_eval_seconds_count 3\n"));
        assert!(text.contains("dr_eval_seconds_sum 5.55\n"));
    }

    #[test]
    fn headers_dedupe_across_series_of_one_family() {
        let mut x = TextExposition::new();
        let c = Counter::new();
        x.counter("dr_shard_events", "Events.", &[("shard", "0")], &c);
        x.counter("dr_shard_events", "Events.", &[("shard", "1")], &c);
        let text = x.render();
        assert_eq!(text.matches("# HELP dr_shard_events").count(), 1);
        assert_eq!(text.matches("dr_shard_events{").count(), 2);
    }

    #[test]
    fn label_values_escape_quotes_and_newlines() {
        let mut x = TextExposition::new();
        x.value("dr_x", "h", "gauge", &[("k", "a\"b\nc")], 1.0);
        assert!(x.render().contains("dr_x{k=\"a\\\"b\\nc\"} 1\n"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let mut x = TextExposition::new();
        x.value("dr metric", "h", "gauge", &[], 1.0);
    }
}
