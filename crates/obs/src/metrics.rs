//! Counters, gauges, and fixed-bucket histograms.
//!
//! Everything here is single-threaded by design: the simulator and the
//! search loop are single-threaded, so interior mutability or atomics
//! would only add cost and noise. Values are plain `f64`/`u64` fields
//! mutated through `&mut self`.

use crate::json;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A value that can move both ways (queue depth, tree size, ...).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Adds `delta` (may be negative).
    pub fn add(&mut self, delta: f64) {
        self.value += delta;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Fixed-bucket histogram with percentile queries.
///
/// Buckets are defined by ascending finite upper bounds; one implicit
/// overflow bucket catches samples above the last bound. Percentiles are
/// answered by linear interpolation inside the bucket where the rank
/// falls, clamped to the observed `[min, max]` so a coarse grid can
/// never report a value outside what was recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending finite upper bounds; `counts` has one extra slot for
    /// samples above `bounds[last]`.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram from ascending finite bucket upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, non-ascending, or contains non-finite
    /// values.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bucket bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` equal-width buckets covering `[lo, hi]`.
    ///
    /// # Panics
    /// If `n == 0` or `lo >= hi` or the range is non-finite.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && lo < hi && lo.is_finite() && hi.is_finite());
        let w = (hi - lo) / n as f64;
        Self::new((1..=n).map(|i| lo + w * i as f64).collect())
    }

    /// `n` buckets with upper bounds `first, first*ratio, ...`.
    ///
    /// # Panics
    /// If `n == 0`, `first <= 0`, or `ratio <= 1`.
    pub fn exponential(first: f64, ratio: f64, n: usize) -> Self {
        assert!(n > 0 && first > 0.0 && ratio > 1.0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = first;
        for _ in 0..n {
            bounds.push(b);
            b *= ratio;
        }
        Self::new(bounds)
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples; `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded sample; `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation within the bucket containing the rank, clamped to
    /// the observed `[min, max]`. `None` while empty.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c;
            if (next as f64) >= rank && c > 0 {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let frac = if c == 0 {
                    0.0
                } else {
                    (rank - cum as f64) / c as f64
                };
                let v = lo + (hi - lo) * frac.clamp(0.0, 1.0);
                return Some(v.clamp(self.min, self.max));
            }
            cum = next;
        }
        Some(self.max)
    }

    /// Per-bucket `(upper_bound, count)` pairs; the overflow bucket
    /// reports `f64::INFINITY` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().map(|(i, &c)| {
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            (bound, c)
        })
    }

    /// Renders the histogram summary as a JSON object.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets()
            .map(|(b, c)| {
                format!(
                    "{{\"le\":{},\"count\":{c}}}",
                    if b.is_finite() {
                        json::number(b)
                    } else {
                        "\"inf\"".to_string()
                    }
                )
            })
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"buckets\":[{}]}}",
            self.count,
            json::number(self.sum),
            json::number(self.min().unwrap_or(f64::NAN)),
            json::number(self.max().unwrap_or(f64::NAN)),
            json::number(self.percentile(0.5).unwrap_or(f64::NAN)),
            json::number(self.percentile(0.95).unwrap_or(f64::NAN)),
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.0);
        g.add(-0.5);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_counts_and_moments() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::exponential(1e-6, 2.0, 30);
        for i in 1..=100 {
            h.record(i as f64 * 1e-5);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!(p >= prev, "p({q}) = {p} < previous {prev}");
            assert!(p >= h.min().unwrap() && p <= h.max().unwrap());
            prev = p;
        }
    }

    #[test]
    fn overflow_bucket_catches_large_samples() {
        let mut h = Histogram::new(vec![1.0]);
        h.record(100.0);
        assert_eq!(h.count(), 1);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[1].1, 1);
        // Percentile in the overflow bucket stays at the observed max.
        assert_eq!(h.percentile(1.0), Some(100.0));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), None);
        crate::json::validate(&h.to_json()).unwrap();
    }

    #[test]
    fn json_is_wellformed() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.record(0.3);
        h.record(0.9);
        crate::json::validate(&h.to_json()).unwrap();
    }
}
