//! Hand-rolled JSON utilities shared by every serializing subsystem.
//!
//! The workspace deliberately avoids serde (no network access to
//! crates.io, and the artifacts are simple); each subsystem formats its
//! own JSON through these helpers, and tests check well-formedness with
//! [`validate`].

/// Escapes a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value. JSON has no NaN/infinity; those
/// become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still valid
        // JSON, so keep it.
        s
    } else {
        "null".to_string()
    }
}

/// Checks that `s` is one well-formed JSON value. Returns the byte
/// offset and message of the first syntax error. This is a syntax
/// checker, not a deserializer: nothing is allocated per value.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing input at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_handles_nonfinite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn validate_accepts_wellformed() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "[1, 2, {\"a\": [true, false, \"x\\n\"]}]",
            "{\"a\":{\"b\":[]},\"c\":0.5}",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "\"unterminated",
            "01abc",
            "[1] extra",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
