//! Hand-rolled JSON utilities shared by every serializing subsystem.
//!
//! The workspace deliberately avoids serde (no network access to
//! crates.io, and the artifacts are simple); each subsystem formats its
//! own JSON through these helpers, and tests check well-formedness with
//! [`validate`].

/// Escapes a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value. JSON has no NaN/infinity; those
/// become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still valid
        // JSON, so keep it.
        s
    } else {
        "null".to_string()
    }
}

/// Checks that `s` is one well-formed JSON value. Returns the byte
/// offset and message of the first syntax error. This is a syntax
/// checker, not a deserializer: nothing is allocated per value.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing input at byte {}", p.i));
    }
    Ok(())
}

/// A parsed JSON value, produced by [`parse`]. Object member order is
/// preserved; numbers are `f64` (the only number type the workspace
/// emits).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `v.path(&["a", "b"])` is `v.get("a")?.get("b")`.
    pub fn path(&self, keys: &[&str]) -> Option<&Value> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses one JSON value (same grammar [`validate`] accepts). Intended
/// for reading back the workspace's own artifacts (ledgers, reports);
/// errors carry the byte offset of the first problem.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing input at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }

    // --- value-building parse (shares the scanners above) ---

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.number()?;
                let text = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| self.err("invalid utf-8 in number"))?;
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| self.err("unparseable number"))
            }
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        let start = self.i;
        self.string()?;
        // `string()` validated the escapes; decode the interior.
        let interior = std::str::from_utf8(&self.b[start + 1..self.i - 1])
            .map_err(|_| self.err("invalid utf-8 in string"))?;
        let mut out = String::with_capacity(interior.len());
        let mut chars = interior.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let cp =
                        u32::from_str_radix(&hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                    // Surrogate pair: combine with a following \uDC00-
                    // range escape when present, else emit U+FFFD.
                    let decoded = if (0xD800..0xDC00).contains(&cp) {
                        let rest = chars.as_str();
                        if let Some(low_hex) =
                            rest.strip_prefix("\\u").map(|r| &r[..4.min(r.len())])
                        {
                            if let Ok(low) = u32::from_str_radix(low_hex, 16) {
                                if (0xDC00..0xE000).contains(&low) {
                                    for _ in 0..6 {
                                        chars.next();
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            None
                        }
                    } else {
                        char::from_u32(cp)
                    };
                    out.push(decoded.unwrap_or('\u{FFFD}'));
                }
                _ => return Err(self.err("bad escape")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_handles_nonfinite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn validate_accepts_wellformed() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "[1, 2, {\"a\": [true, false, \"x\\n\"]}]",
            "{\"a\":{\"b\":[]},\"c\":0.5}",
        ] {
            validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
    }

    #[test]
    fn parse_round_trips_workspace_artifacts() {
        let v = parse(
            "{\"a\": [1, 2.5, -3e2], \"b\": {\"s\": \"x\\n\\u0041\"}, \"n\": null, \"t\": true}",
        )
        .unwrap();
        assert_eq!(v.path(&["b", "s"]).and_then(Value::as_str), Some("x\nA"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert!(v.get("n").unwrap().is_null());
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(arr[1].as_u64(), None);
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Lone high surrogate degrades to U+FFFD rather than erroring.
        let v = parse("\"a\\ud83db\"").unwrap();
        assert_eq!(v.as_str(), Some("a\u{FFFD}b"));
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "\"unterminated", "[1] extra"] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "\"unterminated",
            "01abc",
            "[1] extra",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
