//! Online anomaly detection over the merged fleet stream.
//!
//! The detector watches two signals per worker — heartbeat
//! inter-arrival times and the eval rate (`done / active seconds`) —
//! and compares them against median/MAD bands, the same robust
//! statistics the `compare` regression gate uses. Three anomaly kinds
//! are emitted, each at most once per worker attempt:
//!
//! * **straggler** — the worker's open heartbeat gap blows past the
//!   MAD band of its own previous gaps, or its eval rate falls far
//!   below the fleet's median rate;
//! * **rate-collapse** — the worker's recent eval rate dropped to a
//!   small fraction of its own earlier peak (it was healthy, then
//!   degraded);
//! * **silent-worker** — nothing at all has arrived from the worker's
//!   stream for longer than the silence threshold (the coordinator
//!   wires this to half its stall-kill window, so the anomaly is
//!   always on record *before* the kill decision it explains).
//!
//! The coordinator feeds every merged worker event through
//! [`AnomalyDetector::observe`], marks lifecycle edges with
//! [`note_spawn`]/[`note_exit`], and calls [`scan`] each poll; returned
//! anomalies are emitted as structured `anomaly` events and quoted as
//! the reason for kill/re-issue decisions.
//!
//! [`note_spawn`]: AnomalyDetector::note_spawn
//! [`note_exit`]: AnomalyDetector::note_exit
//! [`scan`]: AnomalyDetector::scan

use crate::aggregate::MergedEvent;

/// Detector thresholds. The defaults mirror `compare`'s noise
/// multiplier; the coordinator overrides `silent_after_s` from its
/// stall window.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// MAD multiplier for the noise bands (same default as `compare`).
    pub noise_k: f64,
    /// Seconds of total stream silence before `silent-worker` fires.
    pub silent_after_s: f64,
    /// Minimum heartbeat samples before the gap/rate bands engage.
    pub min_beats: usize,
    /// `straggler` (fleet-rate form) additionally requires the rate to
    /// be this many times below the fleet median.
    pub straggler_ratio: f64,
    /// `rate-collapse` requires the recent rate to be this many times
    /// below the worker's own peak.
    pub collapse_ratio: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            noise_k: 5.0,
            silent_after_s: 5.0,
            min_beats: 4,
            straggler_ratio: 3.0,
            collapse_ratio: 4.0,
        }
    }
}

/// The three anomaly classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Far slower than its own history or the rest of the fleet.
    Straggler,
    /// Healthy earlier, now a small fraction of its own peak rate.
    RateCollapse,
    /// No stream activity at all beyond the silence threshold.
    SilentWorker,
}

impl AnomalyKind {
    /// The kind's wire name (used in `anomaly` event fields).
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::Straggler => "straggler",
            AnomalyKind::RateCollapse => "rate-collapse",
            AnomalyKind::SilentWorker => "silent-worker",
        }
    }
}

/// One detected anomaly: which worker, which signal, how far outside
/// the band.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// The worker (shard index) the anomaly names.
    pub worker: usize,
    /// The anomaly class.
    pub kind: AnomalyKind,
    /// The metric that tripped (`heartbeat_gap_s`, `eval_rate`,
    /// `stream_silence_s`).
    pub metric: &'static str,
    /// The observed value of that metric.
    pub value: f64,
    /// The band edge it crossed.
    pub threshold: f64,
    /// Human-readable one-liner for coordinator logs.
    pub detail: String,
}

#[derive(Debug, Clone, Default)]
struct Track {
    running: bool,
    finished: bool,
    start_s: f64,
    last_seen_s: f64,
    /// Arrival times of heartbeat/shard-done events.
    beats: Vec<f64>,
    /// (arrival time, cumulative done) heartbeat samples.
    samples: Vec<(f64, u64)>,
    flagged: [bool; 3],
}

impl Track {
    /// Overall eval rate: done per active second, from spawn to the
    /// last sample. Meaningful for finished workers too, so completed
    /// shards anchor the fleet's rate distribution.
    fn rate(&self) -> Option<f64> {
        let &(t, done) = self.samples.last()?;
        let elapsed = t - self.start_s;
        if done == 0 || elapsed < 1e-3 {
            return None;
        }
        Some(done as f64 / elapsed)
    }

    /// Rate over the trailing `window` samples.
    fn recent_rate(&self, window: usize) -> Option<f64> {
        let n = self.samples.len();
        if n < window + 1 {
            return None;
        }
        let (t0, d0) = self.samples[n - 1 - window];
        let (t1, d1) = self.samples[n - 1];
        if t1 - t0 < 1e-3 || d1 <= d0 {
            return None;
        }
        Some((d1 - d0) as f64 / (t1 - t0))
    }

    /// Best rate over any earlier `window`-sample stretch.
    fn peak_rate(&self, window: usize) -> Option<f64> {
        let n = self.samples.len();
        if n < window + 2 {
            return None;
        }
        let mut peak: Option<f64> = None;
        // Exclude the trailing window itself: the peak must predate it.
        for hi in window..(n - 1) {
            let (t0, d0) = self.samples[hi - window];
            let (t1, d1) = self.samples[hi];
            if t1 - t0 >= 1e-3 && d1 > d0 {
                let r = (d1 - d0) as f64 / (t1 - t0);
                peak = Some(peak.map_or(r, |p: f64| p.max(r)));
            }
        }
        peak
    }
}

/// Median of a non-empty slice (even length: mean of the middle pair).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `med`.
fn mad(xs: &[f64], med: f64) -> f64 {
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&mut dev)
}

/// Per-worker anomaly tracking over the merged stream.
#[derive(Debug)]
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    tracks: Vec<Track>,
}

/// Trailing-window width (in heartbeat samples) for the rate-collapse
/// comparison.
const RATE_WINDOW: usize = 3;

impl AnomalyDetector {
    /// A detector for `count` workers.
    pub fn new(count: usize, cfg: AnomalyConfig) -> Self {
        AnomalyDetector {
            cfg,
            tracks: vec![Track::default(); count],
        }
    }

    /// Marks worker `index` as (re-)spawned at `now_s`: all history and
    /// flags reset, so a fresh attempt gets a fresh verdict.
    pub fn note_spawn(&mut self, index: usize, now_s: f64) {
        if let Some(t) = self.tracks.get_mut(index) {
            *t = Track {
                running: true,
                start_s: now_s,
                last_seen_s: now_s,
                ..Track::default()
            };
        }
    }

    /// Marks worker `index` as exited (killed, done, or crashed); no
    /// further anomalies are raised against it until the next spawn.
    pub fn note_exit(&mut self, index: usize) {
        if let Some(t) = self.tracks.get_mut(index) {
            t.running = false;
        }
    }

    /// Feeds one merged event. Coordinator events are ignored; any
    /// worker event counts as stream activity, and heartbeats feed the
    /// gap/rate statistics.
    pub fn observe(&mut self, ev: &MergedEvent) {
        let Some(index) = ev.worker else { return };
        let Some(t) = self.tracks.get_mut(index) else {
            return;
        };
        t.last_seen_s = ev.seen_s;
        match ev.kind.as_str() {
            "heartbeat" => {
                t.beats.push(ev.seen_s);
                let done = ev.field_u64("done").unwrap_or(0);
                t.samples.push((ev.seen_s, done));
            }
            "shard-done" => {
                t.beats.push(ev.seen_s);
                t.finished = true;
            }
            _ => {}
        }
    }

    /// Scans every running, unfinished worker at `now_s`, returning
    /// newly crossed bands (each worker/kind pair fires at most once
    /// per attempt).
    pub fn scan(&mut self, now_s: f64) -> Vec<Anomaly> {
        let mut out = Vec::new();
        for index in 0..self.tracks.len() {
            let t = &self.tracks[index];
            if !t.running || t.finished {
                continue;
            }
            let silence = now_s - t.last_seen_s;
            if !t.flagged[2] && silence > self.cfg.silent_after_s {
                out.push(Anomaly {
                    worker: index,
                    kind: AnomalyKind::SilentWorker,
                    metric: "stream_silence_s",
                    value: silence,
                    threshold: self.cfg.silent_after_s,
                    detail: format!(
                        "worker {index}: no stream activity for {silence:.2}s \
                         (threshold {:.2}s)",
                        self.cfg.silent_after_s
                    ),
                });
                self.tracks[index].flagged[2] = true;
                continue;
            }
            if !t.flagged[0] {
                if let Some(a) = self.straggler(index, now_s) {
                    out.push(a);
                    self.tracks[index].flagged[0] = true;
                    continue;
                }
            }
            if !t.flagged[1] {
                if let Some(a) = self.rate_collapse(index) {
                    out.push(a);
                    self.tracks[index].flagged[1] = true;
                }
            }
        }
        out
    }

    /// Straggler check: the open heartbeat gap against the worker's own
    /// gap band, then the worker's eval rate against the fleet's.
    ///
    /// The fleet band is leave-one-out: it is built from the *other*
    /// workers' rates (finished ones included — completed shards anchor
    /// "normal"). Including the candidate's own rate would poison the
    /// statistic in small fleets: with three workers, the MAD of all
    /// three rates is the healthy pair's spread, and ordinary timing
    /// noise between two fast workers then widens the band until a
    /// genuine crawler sits inside it.
    fn straggler(&self, index: usize, now_s: f64) -> Option<Anomaly> {
        let t = &self.tracks[index];
        if t.beats.len() >= self.cfg.min_beats {
            let mut gaps: Vec<f64> = t.beats.windows(2).map(|w| w[1] - w[0]).collect();
            let open_gap = now_s - *t.beats.last().expect("beats non-empty");
            if !gaps.is_empty() {
                let med = median(&mut gaps);
                let band = med + self.cfg.noise_k * mad(&gaps, med);
                // Also require a generous absolute margin so scheduler
                // jitter on a loaded box cannot trip the band.
                if open_gap > band && open_gap > 2.0 * med && open_gap > 0.05 {
                    return Some(Anomaly {
                        worker: index,
                        kind: AnomalyKind::Straggler,
                        metric: "heartbeat_gap_s",
                        value: open_gap,
                        threshold: band,
                        detail: format!(
                            "worker {index}: heartbeat gap {open_gap:.3}s exceeds its \
                             median+{:.0}·MAD band ({band:.3}s)",
                            self.cfg.noise_k
                        ),
                    });
                }
            }
        }
        let mut others: Vec<f64> = self
            .tracks
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != index)
            .filter_map(|(_, o)| o.rate())
            .collect();
        if others.len() >= 2 {
            let my_rate = t.rate()?;
            let med = median(&mut others);
            let band = med - self.cfg.noise_k * mad(&others, med);
            if my_rate < band && my_rate * self.cfg.straggler_ratio < med {
                return Some(Anomaly {
                    worker: index,
                    kind: AnomalyKind::Straggler,
                    metric: "eval_rate",
                    value: my_rate,
                    threshold: med / self.cfg.straggler_ratio,
                    detail: format!(
                        "worker {index}: eval rate {my_rate:.1}/s is under the fleet \
                         median {med:.1}/s by more than {:.0}·MAD and {:.0}x",
                        self.cfg.noise_k, self.cfg.straggler_ratio
                    ),
                });
            }
        }
        None
    }

    /// Rate-collapse check: the trailing-window rate against the
    /// worker's own earlier peak.
    fn rate_collapse(&self, index: usize) -> Option<Anomaly> {
        let t = &self.tracks[index];
        if t.samples.len() < self.cfg.min_beats.max(RATE_WINDOW + 2) {
            return None;
        }
        let recent = t.recent_rate(RATE_WINDOW)?;
        let peak = t.peak_rate(RATE_WINDOW)?;
        if recent * self.cfg.collapse_ratio < peak {
            return Some(Anomaly {
                worker: index,
                kind: AnomalyKind::RateCollapse,
                metric: "eval_rate",
                value: recent,
                threshold: peak / self.cfg.collapse_ratio,
                detail: format!(
                    "worker {index}: recent eval rate {recent:.1}/s collapsed below \
                     1/{:.0} of its own peak {peak:.1}/s",
                    self.cfg.collapse_ratio
                ),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_obs::json;

    fn beat(worker: usize, seen_s: f64, done: u64) -> MergedEvent {
        let raw = format!(
            "{{\"schema\":\"dr-events/v1\",\"run\":\"r\",\"seq\":0,\"t_s\":{seen_s},\
             \"kind\":\"heartbeat\",\"shard\":{worker},\"of\":3,\"done\":{done},\"total\":20}}"
        );
        MergedEvent {
            gseq: 0,
            worker: Some(worker),
            seen_s,
            run: "r".into(),
            seq: 0,
            t_s: seen_s,
            kind: "heartbeat".into(),
            value: json::parse(&raw).unwrap(),
            raw,
        }
    }

    fn done_event(worker: usize, seen_s: f64) -> MergedEvent {
        let mut ev = beat(worker, seen_s, 20);
        ev.kind = "shard-done".into();
        ev
    }

    #[test]
    fn silent_worker_fires_once_before_a_kill_window() {
        let cfg = AnomalyConfig {
            silent_after_s: 0.2,
            ..AnomalyConfig::default()
        };
        let mut det = AnomalyDetector::new(1, cfg);
        det.note_spawn(0, 0.0);
        det.observe(&beat(0, 0.05, 1));
        assert!(det.scan(0.1).is_empty(), "still live");
        let found = det.scan(0.5);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, AnomalyKind::SilentWorker);
        assert_eq!(found[0].metric, "stream_silence_s");
        assert_eq!(found[0].worker, 0);
        assert!(det.scan(1.0).is_empty(), "flagged once per attempt");
        // A respawn resets the flag.
        det.note_spawn(0, 2.0);
        assert_eq!(det.scan(3.0).len(), 1);
    }

    #[test]
    fn fleet_rate_band_names_the_straggler() {
        let mut det = AnomalyDetector::new(3, AnomalyConfig::default());
        for w in 0..3 {
            det.note_spawn(w, 0.0);
        }
        // Workers 0 and 1 finish 20 evals in 10 ms; worker 2 crawls.
        for w in 0..2 {
            det.observe(&beat(w, 0.005, 10));
            det.observe(&beat(w, 0.010, 20));
            det.observe(&done_event(w, 0.010));
            det.note_exit(w);
        }
        for (t, d) in [(0.1, 1u64), (0.2, 2), (0.3, 3), (0.4, 4)] {
            det.observe(&beat(2, t, d));
        }
        let found = det.scan(0.45);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].worker, 2);
        assert_eq!(found[0].kind, AnomalyKind::Straggler);
        assert_eq!(found[0].metric, "eval_rate");
        assert!(found[0].value < found[0].threshold);
    }

    #[test]
    fn healthy_pair_spread_does_not_hide_the_straggler() {
        // Regression: two fast workers whose rates differ by ordinary
        // timing noise (~25%) and one crawler. With the candidate's own
        // rate inside the distribution, the MAD equals the healthy
        // pair's spread and the band collapses below zero; the
        // leave-one-out band must still flag the crawler.
        let mut det = AnomalyDetector::new(3, AnomalyConfig::default());
        for w in 0..3 {
            det.note_spawn(w, 0.0);
        }
        det.observe(&beat(0, 0.15, 95)); // ~633/s
        det.observe(&done_event(0, 0.16));
        det.note_exit(0);
        det.observe(&beat(1, 0.20, 95)); // ~475/s
        det.observe(&done_event(1, 0.21));
        det.note_exit(1);
        det.observe(&beat(2, 0.95, 16)); // ~17/s
        let found = det.scan(1.0);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].worker, 2);
        assert_eq!(found[0].kind, AnomalyKind::Straggler);
        assert_eq!(found[0].metric, "eval_rate");
    }

    #[test]
    fn rate_collapse_compares_against_own_peak() {
        let mut det = AnomalyDetector::new(1, AnomalyConfig::default());
        det.note_spawn(0, 0.0);
        // Fast early: 5 evals per 10 ms beat. Then nearly flat.
        for i in 1..=5u64 {
            det.observe(&beat(0, i as f64 * 0.01, i * 5));
        }
        for i in 1..=3u64 {
            det.observe(&beat(0, 0.05 + i as f64 * 0.5, 25 + i));
        }
        let found = det.scan(1.58);
        assert!(
            found
                .iter()
                .any(|a| a.kind == AnomalyKind::RateCollapse && a.metric == "eval_rate"),
            "{found:?}"
        );
    }

    #[test]
    fn homogeneous_fleet_is_quiet() {
        let mut det = AnomalyDetector::new(3, AnomalyConfig::default());
        for w in 0..3 {
            det.note_spawn(w, 0.0);
            for i in 1..=6u64 {
                det.observe(&beat(w, i as f64 * 0.02, i * 3));
            }
        }
        assert!(det.scan(0.13).is_empty());
    }
}
