//! Merged swarm Perfetto export: one process per worker, flow arrows
//! from shard issue to shard completion.
//!
//! Each source stream carries its own monotonic clock (`t_s` is seconds
//! since *that* sink started, and workers start at spawn time, not at
//! swarm start). The merged stream's `seen_s` stamps give a shared
//! coordinator clock, so each worker attempt is rebased onto it with a
//! per-attempt offset — the first event's `seen_s − t_s` — which places
//! every stream on one timeline while preserving the worker's own
//! high-resolution spacing between events.
//!
//! The export builds one trace-event fragment per process and splices
//! them with [`dr_trace::merge_chrome_json`], the same path the
//! pipeline uses to join its own spans with simulated-program
//! timelines.

use crate::aggregate::MergedEvent;
use dr_obs::json;

/// Process id for the swarm coordinator's event lane, far above both
/// simulated MPI ranks (`pid = rank`) and the pipeline's own spans
/// (`dr_trace::PIPELINE_PID`). Worker `i` exports as
/// `FLEET_COORDINATOR_PID + 1 + i`.
pub const FLEET_COORDINATOR_PID: u64 = 3_000_000;

fn ts_us(seconds: f64) -> String {
    json::number(seconds * 1e6)
}

fn meta(pid: u64, tid: u64, which: &str, name: &str) -> String {
    format!(
        "{{\"name\": \"{which}\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        json::escape(name)
    )
}

/// One worker attempt, rebased onto the coordinator clock.
struct Attempt<'a> {
    offset_s: f64,
    events: Vec<&'a MergedEvent>,
}

impl Attempt<'_> {
    fn place(&self, ev: &MergedEvent) -> f64 {
        self.offset_s + ev.t_s
    }
}

/// Splits a worker's merged events into attempts: a re-issued worker
/// restarts its sink, so its stream-local `seq` falls back to zero.
fn attempts_of<'a>(events: &[&'a MergedEvent]) -> Vec<Attempt<'a>> {
    let mut out: Vec<Attempt<'a>> = Vec::new();
    let mut last_seq: Option<u64> = None;
    for ev in events {
        let restart = matches!(last_seq, Some(prev) if ev.seq <= prev);
        if restart || out.is_empty() {
            out.push(Attempt {
                offset_s: ev.seen_s - ev.t_s,
                events: Vec::new(),
            });
        }
        last_seq = Some(ev.seq);
        out.last_mut().expect("attempt pushed").events.push(ev);
    }
    out
}

fn coordinator_fragment(events: &[&MergedEvent]) -> String {
    let pid = FLEET_COORDINATOR_PID;
    let mut recs = vec![
        meta(pid, 0, "process_name", "swarm coordinator"),
        meta(pid, 0, "thread_name", "events"),
    ];
    for ev in events {
        let args = match ev.field_u64("shard") {
            Some(s) => format!("{{\"shard\": \"{s}\"}}"),
            None => "{}".to_string(),
        };
        recs.push(format!(
            "{{\"name\": \"{}\", \"cat\": \"fleet\", \"ph\": \"i\", \"s\": \"p\", \
             \"pid\": {pid}, \"tid\": 0, \"ts\": {}, \"args\": {args}}}",
            json::escape(&ev.kind),
            ts_us(ev.seen_s),
        ));
    }
    format!("[{}]", recs.join(",\n "))
}

fn worker_fragment(index: usize, count: usize, events: &[&MergedEvent]) -> String {
    let pid = FLEET_COORDINATOR_PID + 1 + index as u64;
    let mut recs = vec![
        meta(pid, 0, "process_name", &format!("shard {index}/{count}")),
        meta(pid, 0, "thread_name", "shard"),
        meta(pid, 1, "thread_name", "beats"),
    ];
    for (k, attempt) in attempts_of(events).iter().enumerate() {
        let (Some(first), Some(last)) = (attempt.events.first(), attempt.events.last()) else {
            continue;
        };
        let start = attempt.place(first);
        let end = attempt.place(last).max(start);
        let records = attempt
            .events
            .iter()
            .rev()
            .find(|e| e.kind == "shard-done")
            .and_then(|e| e.field_u64("records"));
        let mut args = format!("\"attempt\": \"{}\"", k + 1);
        if let Some(r) = records {
            args.push_str(&format!(", \"records\": \"{r}\""));
        }
        recs.push(format!(
            "{{\"name\": \"shard {index} attempt {}\", \"cat\": \"fleet\", \"ph\": \"X\", \
             \"pid\": {pid}, \"tid\": 0, \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
            k + 1,
            ts_us(start),
            ts_us(end - start),
        ));
        for ev in &attempt.events {
            if ev.kind != "heartbeat" {
                continue;
            }
            let done = ev.field_u64("done").unwrap_or(0);
            let total = ev.field_u64("total").unwrap_or(0);
            recs.push(format!(
                "{{\"name\": \"beat\", \"cat\": \"fleet\", \"ph\": \"i\", \"s\": \"t\", \
                 \"pid\": {pid}, \"tid\": 1, \"ts\": {}, \
                 \"args\": {{\"done\": \"{done}\", \"total\": \"{total}\"}}}}",
                ts_us(attempt.place(ev)),
            ));
            recs.push(format!(
                "{{\"name\": \"evals done\", \"ph\": \"C\", \"pid\": {pid}, \"tid\": 0, \
                 \"ts\": {}, \"args\": {{\"done\": {done}}}}}",
                ts_us(attempt.place(ev)),
            ));
        }
    }
    format!("[{}]", recs.join(",\n "))
}

/// Flow arrows: each completed shard gets an arrow from the
/// coordinator's issuing `worker-spawn` event to the worker's
/// `shard-done`, both placed on the shared coordinator clock.
fn flow_fragment(events: &[MergedEvent]) -> String {
    let mut recs: Vec<String> = Vec::new();
    let mut flow_id = 0u64;
    for done in events.iter().filter(|e| e.kind == "shard-done") {
        let Some(worker) = done.worker else { continue };
        // The latest issue of this shard at or before its completion.
        let spawn = events.iter().rfind(|e| {
            e.worker.is_none()
                && e.kind == "worker-spawn"
                && e.field_u64("shard") == Some(worker as u64)
                && e.seen_s <= done.seen_s
        });
        let Some(spawn) = spawn else { continue };
        let worker_events: Vec<&MergedEvent> =
            events.iter().filter(|e| e.worker == Some(worker)).collect();
        let landed = attempts_of(&worker_events)
            .iter()
            .find_map(|a| {
                a.events
                    .iter()
                    .any(|e| std::ptr::eq::<MergedEvent>(*e, done))
                    .then(|| a.place(done))
            })
            .unwrap_or(done.seen_s);
        let pid = FLEET_COORDINATOR_PID + 1 + worker as u64;
        recs.push(format!(
            "{{\"name\": \"issue\", \"cat\": \"fleet-flow\", \"ph\": \"s\", \"id\": {flow_id}, \
             \"pid\": {FLEET_COORDINATOR_PID}, \"tid\": 0, \"ts\": {}}}",
            ts_us(spawn.seen_s),
        ));
        recs.push(format!(
            "{{\"name\": \"issue\", \"cat\": \"fleet-flow\", \"ph\": \"f\", \"bp\": \"e\", \
             \"id\": {flow_id}, \"pid\": {pid}, \"tid\": 0, \"ts\": {}}}",
            ts_us(landed),
        ));
        flow_id += 1;
    }
    format!("[{}]", recs.join(",\n "))
}

/// Renders the merged fleet stream as one Chrome trace-event JSON
/// array: an instant lane for the coordinator, one process per worker
/// (spans per attempt, heartbeat instants, an eval counter), and flow
/// arrows from each shard's issue to its completion.
pub fn swarm_chrome_json(events: &[MergedEvent], workers: usize) -> String {
    let coord: Vec<&MergedEvent> = events.iter().filter(|e| e.worker.is_none()).collect();
    let mut fragments = vec![coordinator_fragment(&coord)];
    for i in 0..workers {
        let mine: Vec<&MergedEvent> = events.iter().filter(|e| e.worker == Some(i)).collect();
        fragments.push(worker_fragment(i, workers, &mine));
    }
    fragments.push(flow_fragment(events));
    let refs: Vec<&str> = fragments.iter().map(String::as_str).collect();
    dr_trace::merge_chrome_json(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        worker: Option<usize>,
        seq: u64,
        seen_s: f64,
        t_s: f64,
        kind: &str,
        fields: &[(&str, u64)],
    ) -> MergedEvent {
        let mut raw = format!(
            "{{\"schema\":\"dr-events/v1\",\"run\":\"r\",\"seq\":{seq},\"t_s\":{t_s},\
             \"kind\":\"{kind}\""
        );
        for (k, v) in fields {
            raw.push_str(&format!(",\"{k}\":{v}"));
        }
        raw.push('}');
        MergedEvent {
            gseq: 0,
            worker,
            seen_s,
            run: "r".into(),
            seq,
            t_s,
            kind: kind.into(),
            value: json::parse(&raw).unwrap(),
            raw,
        }
    }

    fn sample() -> Vec<MergedEvent> {
        vec![
            ev(None, 0, 0.1, 0.1, "worker-spawn", &[("shard", 0)]),
            // Worker clock starts near zero at spawn: t_s ≪ seen_s.
            ev(
                Some(0),
                0,
                0.35,
                0.2,
                "heartbeat",
                &[("shard", 0), ("of", 1), ("done", 5), ("total", 10)],
            ),
            ev(
                Some(0),
                1,
                0.55,
                0.4,
                "heartbeat",
                &[("shard", 0), ("of", 1), ("done", 10), ("total", 10)],
            ),
            ev(
                Some(0),
                2,
                0.6,
                0.45,
                "shard-done",
                &[("shard", 0), ("of", 1), ("records", 10)],
            ),
            ev(None, 1, 0.7, 0.7, "swarm-done", &[]),
        ]
    }

    #[test]
    fn export_is_valid_json_with_flows_and_processes() {
        let out = swarm_chrome_json(&sample(), 1);
        json::validate(&out).expect("valid chrome json");
        assert!(out.contains("\"swarm coordinator\""), "{out}");
        assert!(out.contains("\"shard 0/1\""), "{out}");
        assert!(out.contains("\"ph\": \"X\""), "{out}");
        assert!(out.contains("\"ph\": \"s\""), "{out}");
        assert!(out.contains("\"ph\": \"f\""), "{out}");
        assert!(out.contains("\"ph\": \"C\""), "{out}");
        assert!(out.contains(&format!("\"pid\": {FLEET_COORDINATOR_PID}")));
        assert!(out.contains(&format!("\"pid\": {}", FLEET_COORDINATOR_PID + 1)));
    }

    #[test]
    fn worker_events_are_rebased_onto_the_coordinator_clock() {
        let out = swarm_chrome_json(&sample(), 1);
        // First worker event: offset = 0.35 − 0.2 = 0.15, so the span
        // starts at 0.35s = 350000µs on the shared clock, not at the
        // worker-local 200000µs.
        assert!(out.contains("\"ts\": 350000"), "{out}");
        assert!(!out.contains("\"ts\": 200000"), "{out}");
    }

    #[test]
    fn respawn_splits_attempts() {
        let mut events = sample();
        // A re-issued worker restarts seq at 0 with a fresh clock.
        events.push(ev(None, 2, 1.0, 1.0, "worker-spawn", &[("shard", 0)]));
        events.push(ev(
            Some(0),
            0,
            1.2,
            0.05,
            "heartbeat",
            &[("shard", 0), ("of", 1), ("done", 2), ("total", 10)],
        ));
        let out = swarm_chrome_json(&events, 1);
        json::validate(&out).expect("valid chrome json");
        assert!(out.contains("shard 0 attempt 1"), "{out}");
        assert!(out.contains("shard 0 attempt 2"), "{out}");
    }
}
