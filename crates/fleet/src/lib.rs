//! `dr-fleet` — cross-process telemetry aggregation for the swarm.
//!
//! A swarm run produces N+1 `dr-events/v1` NDJSON streams: one per
//! shard worker plus the coordinator's own events. This crate merges
//! them into a single causally-useful view:
//!
//! * [`tail::StreamTailer`] — offset-based, truncation-aware file
//!   tailing that only ever consumes complete lines (a partial line
//!   left by a mid-write poll is re-read on the next poll);
//! * [`aggregate::Aggregator`] — merges every stream into one gapless
//!   globally-sequenced `dr-fleet/v1` NDJSON stream (each merged line
//!   embeds the original event object verbatim), validates worker
//!   lines against the expected run id and shard identity, and tracks
//!   per-worker lag;
//! * [`anomaly::AnomalyDetector`] — online straggler / rate-collapse /
//!   silent-worker detection over heartbeat inter-arrival times and
//!   per-worker eval rates, using the same median/MAD statistics as
//!   the `compare` gate;
//! * [`progress::FleetProgress`] — a fleet-wide progress rollup whose
//!   status line is invariant under reordering of worker streams;
//! * [`timeline::swarm_chrome_json`] — a merged Perfetto export: one
//!   pid per worker, flow arrows from shard issue to shard completion,
//!   built on `dr_trace::merge_chrome_json`.
//!
//! Aggregation is **inert by construction**: the aggregator runs in the
//! coordinator process only and is a pure reader of the worker files —
//! workers never know whether anyone is tailing them, so a swarm run
//! with aggregation enabled commits bit-identical records to a silent
//! one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod anomaly;
pub mod progress;
pub mod tail;
pub mod timeline;

pub use aggregate::{Aggregator, CoordinatorQueue, FleetStats, MergedEvent, WorkerLag};
pub use anomaly::{Anomaly, AnomalyConfig, AnomalyDetector, AnomalyKind};
pub use progress::FleetProgress;
pub use tail::StreamTailer;
pub use timeline::{swarm_chrome_json, FLEET_COORDINATOR_PID};

/// Schema tag written into every merged fleet stream line.
pub const FLEET_SCHEMA: &str = "dr-fleet/v1";
