//! Fleet-wide `--progress` rollup over the merged event stream.
//!
//! Unlike the single-process renderer (whose "current phase" is
//! whatever event arrived last), every fold here is **permutation
//! invariant** — per-shard maxima, or-flags, and multiset counts — so
//! the final status line is a pure function of the *set* of merged
//! events, independent of how N worker streams happened to interleave.
//! The property test in `tests/proptest_progress.rs` holds the renderer
//! to exactly that: folding any shuffled interleaving of the worker
//! streams must yield the same final line as the sorted merge.
//!
//! Rates and the elapsed prefix are computed from the events' own
//! arrival stamps (the max `seen_s` folded so far), not from a wall
//! clock read at render time — again so the line depends only on the
//! events.

use crate::aggregate::MergedEvent;
use std::io::Write;
use std::time::{Duration, Instant};

/// Minimum interval between in-place repaints on a TTY.
const TTY_INTERVAL: Duration = Duration::from_millis(100);
/// Minimum interval between plain progress lines off-TTY.
const PLAIN_INTERVAL: Duration = Duration::from_secs(2);

#[derive(Debug, Clone, Default)]
struct ShardState {
    done: u64,
    total: u64,
    records: u64,
    hits: u64,
    finished: bool,
    quarantined: bool,
}

/// Folds merged fleet events into one fleet-wide status line and paints
/// it on stderr (repainted in place on a TTY, periodic plain lines
/// otherwise).
#[derive(Debug)]
pub struct FleetProgress {
    shards: Vec<ShardState>,
    anomalies: u64,
    max_seen_s: f64,
    finished: bool,
    tty: bool,
    last_paint: Option<Instant>,
    painted_tty_line: bool,
}

impl FleetProgress {
    /// A rollup for `count` shards, auto-detecting whether stderr is a
    /// TTY.
    pub fn new(count: usize) -> Self {
        use std::io::IsTerminal;
        Self::with_tty(count, std::io::stderr().is_terminal())
    }

    /// A rollup with the paint mode pinned (tests exercise both paths
    /// deterministically).
    pub fn with_tty(count: usize, tty: bool) -> Self {
        FleetProgress {
            shards: vec![ShardState::default(); count],
            anomalies: 0,
            max_seen_s: 0.0,
            finished: false,
            tty,
            last_paint: None,
            painted_tty_line: false,
        }
    }

    /// Folds one merged event. Every update is a max, an or, or a
    /// count, so any interleaving of the source streams folds to the
    /// same state.
    pub fn observe(&mut self, ev: &MergedEvent) {
        self.max_seen_s = self.max_seen_s.max(ev.seen_s);
        match ev.kind.as_str() {
            "heartbeat" => {
                if let Some(s) = ev.worker.and_then(|i| self.shards.get_mut(i)) {
                    s.done = s.done.max(ev.field_u64("done").unwrap_or(0));
                    s.total = s.total.max(ev.field_u64("total").unwrap_or(0));
                }
            }
            "shard-done" => {
                if let Some(s) = ev.worker.and_then(|i| self.shards.get_mut(i)) {
                    s.finished = true;
                    s.records = s.records.max(ev.field_u64("records").unwrap_or(0));
                    s.hits = s.hits.max(ev.field_u64("store_hits").unwrap_or(0));
                    // A shard can finish without ever heartbeating; its
                    // record count then stands in for the work total.
                    s.total = s.total.max(s.records);
                }
            }
            // Coordinator-resumed shard: complete before any worker ran.
            "shard-resumed" => {
                let shard = ev.field_u64("shard").map(|v| v as usize);
                if let Some(s) = shard.and_then(|i| self.shards.get_mut(i)) {
                    s.finished = true;
                    s.records = s.records.max(ev.field_u64("records").unwrap_or(0));
                    s.hits = s.hits.max(ev.field_u64("store_hits").unwrap_or(0));
                    s.total = s.total.max(s.records);
                }
            }
            "anomaly" => self.anomalies += 1,
            "shard-quarantined" => {
                let shard = ev.field_u64("shard").map(|v| v as usize);
                if let Some(s) = shard.and_then(|i| self.shards.get_mut(i)) {
                    s.quarantined = true;
                }
            }
            _ => {}
        }
    }

    /// A shard's effective progress: its completed total once finished,
    /// else the best heartbeat seen.
    fn shard_done(s: &ShardState) -> u64 {
        if s.finished {
            s.done.max(s.total)
        } else {
            s.done
        }
    }

    /// The current fleet status line — a pure function of the folded
    /// event set.
    pub fn snapshot_line(&self) -> String {
        let total: u64 = self.shards.iter().map(|s| s.total).sum();
        let done: u64 = self.shards.iter().map(Self::shard_done).sum();
        let complete = self.shards.iter().filter(|s| s.finished).count();
        let quarantined = self.shards.iter().filter(|s| s.quarantined).count();
        let mut line = format!("[{:6.1}s] fleet", self.max_seen_s);
        if total > 0 {
            const WIDTH: usize = 20;
            let filled = ((done as f64 / total as f64) * WIDTH as f64).round() as usize;
            let filled = filled.min(WIDTH);
            line.push_str(&format!(
                " [{}{}] {done}/{total} evals",
                "#".repeat(filled),
                ".".repeat(WIDTH - filled)
            ));
            if self.max_seen_s > 1e-9 {
                line.push_str(&format!(" | {:.0}/s", done as f64 / self.max_seen_s));
            }
        }
        line.push_str(&format!(" | shards {complete}/{}", self.shards.len()));
        let records: u64 = self.shards.iter().map(|s| s.records).sum();
        let hits: u64 = self.shards.iter().map(|s| s.hits).sum();
        if records > 0 {
            line.push_str(&format!(
                " | cache {:.0}%",
                hits as f64 / records as f64 * 100.0
            ));
        }
        if quarantined > 0 {
            line.push_str(&format!(" | quarantined {quarantined}"));
        }
        if self.anomalies > 0 {
            line.push_str(&format!(" | anomalies {}", self.anomalies));
        }
        let bars: Vec<String> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.quarantined {
                    format!("s{i}:x")
                } else if s.finished {
                    format!("s{i}:ok")
                } else if s.total > 0 {
                    format!("s{i}:{}/{}", s.done, s.total)
                } else {
                    format!("s{i}:-")
                }
            })
            .collect();
        line.push_str(&format!(" | {}", bars.join(" ")));
        line
    }

    /// Paints the current line if an interval elapsed (or `force`).
    pub fn paint(&mut self, force: bool) {
        let interval = if self.tty {
            TTY_INTERVAL
        } else {
            PLAIN_INTERVAL
        };
        let due = match self.last_paint {
            Some(t) => t.elapsed() >= interval,
            None => true,
        };
        if !force && !due {
            return;
        }
        self.last_paint = Some(Instant::now());
        let line = self.snapshot_line();
        let mut err = std::io::stderr().lock();
        if self.tty {
            let _ = write!(err, "\r\x1b[2K{line}");
            if self.finished {
                let _ = writeln!(err);
                self.painted_tty_line = false;
            } else {
                self.painted_tty_line = true;
            }
            let _ = err.flush();
        } else {
            let _ = writeln!(err, "{line}");
        }
    }

    /// Final paint: forces one last line and, on a TTY, terminates the
    /// repainted line with a newline.
    pub fn finish(&mut self) {
        self.finished = true;
        self.paint(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_obs::json;

    fn ev(worker: Option<usize>, seen_s: f64, kind: &str, fields: &[(&str, u64)]) -> MergedEvent {
        let mut raw = format!(
            "{{\"schema\":\"dr-events/v1\",\"run\":\"r\",\"seq\":0,\"t_s\":{seen_s},\
             \"kind\":\"{kind}\""
        );
        for (k, v) in fields {
            raw.push_str(&format!(",\"{k}\":{v}"));
        }
        raw.push('}');
        MergedEvent {
            gseq: 0,
            worker,
            seen_s,
            run: "r".into(),
            seq: 0,
            t_s: seen_s,
            kind: kind.into(),
            value: json::parse(&raw).unwrap(),
            raw,
        }
    }

    #[test]
    fn folds_to_a_fleet_line() {
        let mut p = FleetProgress::with_tty(3, false);
        p.observe(&ev(
            Some(0),
            0.5,
            "heartbeat",
            &[("done", 10), ("total", 20)],
        ));
        p.observe(&ev(
            Some(1),
            0.6,
            "heartbeat",
            &[("done", 5), ("total", 20)],
        ));
        p.observe(&ev(
            Some(2),
            1.0,
            "shard-done",
            &[("records", 20), ("store_hits", 10)],
        ));
        p.observe(&ev(None, 1.1, "anomaly", &[("worker", 1)]));
        let line = p.snapshot_line();
        assert!(line.contains("35/60 evals"), "{line}");
        assert!(line.contains("shards 1/3"), "{line}");
        assert!(line.contains("cache 50%"), "{line}");
        assert!(line.contains("anomalies 1"), "{line}");
        assert!(line.contains("s0:10/20 s1:5/20 s2:ok"), "{line}");
    }

    #[test]
    fn quarantine_marks_the_shard() {
        let mut p = FleetProgress::with_tty(2, false);
        p.observe(&ev(None, 2.0, "shard-quarantined", &[("shard", 1)]));
        let line = p.snapshot_line();
        assert!(line.contains("quarantined 1"), "{line}");
        assert!(line.contains("s1:x"), "{line}");
    }

    #[test]
    fn stale_heartbeats_cannot_regress_progress() {
        let mut p = FleetProgress::with_tty(1, false);
        p.observe(&ev(
            Some(0),
            0.9,
            "heartbeat",
            &[("done", 15), ("total", 20)],
        ));
        // An earlier beat arriving late (out-of-order drain) is absorbed.
        p.observe(&ev(
            Some(0),
            0.3,
            "heartbeat",
            &[("done", 3), ("total", 20)],
        ));
        let line = p.snapshot_line();
        assert!(line.contains("15/20"), "{line}");
        assert!(line.starts_with("[   0.9s]"), "{line}");
    }
}
