//! Offset-based, truncation-aware NDJSON file tailing.
//!
//! The swarm coordinator polls each worker's event file with the same
//! idiom its heartbeat scanner used — remember a byte offset, read
//! whatever grew past it, restart from zero when the file shrank (a
//! worker restart truncates its stream via `File::create`) — but with
//! one crucial refinement for lossless aggregation: **only complete
//! lines are consumed**. A poll that lands mid-write leaves the partial
//! trailing line unread (the offset stays at the last newline), so the
//! next poll re-reads it once the writer finishes the line. No line is
//! ever split, duplicated, or dropped.

use std::io::{Read, Seek};
use std::path::{Path, PathBuf};

/// The outcome of one [`StreamTailer::poll`].
#[derive(Debug, Default)]
pub struct TailPoll {
    /// Complete lines consumed by this poll, in file order, without
    /// trailing newlines.
    pub lines: Vec<String>,
    /// Bytes present in the file but not yet consumed (a partial
    /// trailing line): the tailer's instantaneous lag behind the
    /// writer.
    pub pending_bytes: u64,
    /// Whether this poll detected a truncation (file shrank below the
    /// consumed offset) and re-tailed from the start.
    pub truncated: bool,
}

/// Tails one NDJSON file by byte offset, consuming only complete lines.
#[derive(Debug)]
pub struct StreamTailer {
    path: PathBuf,
    offset: u64,
}

impl StreamTailer {
    /// A tailer positioned at the start of `path` (which need not exist
    /// yet — polls before creation return nothing).
    pub fn new(path: &Path) -> Self {
        StreamTailer {
            path: path.to_path_buf(),
            offset: 0,
        }
    }

    /// The path being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The byte offset after the last consumed newline.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Forgets all progress and re-tails from byte zero (used when the
    /// coordinator re-issues a shard and pre-truncates its stream).
    pub fn reset(&mut self) {
        self.offset = 0;
    }

    /// Reads every complete line that appeared past the consumed
    /// offset. I/O errors are treated as "nothing new" — the file may
    /// be mid-create — and a shrunken file restarts the tail at zero.
    pub fn poll(&mut self) -> TailPoll {
        let mut out = TailPoll::default();
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return out;
        };
        let len = f.metadata().map(|m| m.len()).unwrap_or(0);
        if len < self.offset {
            self.offset = 0;
            out.truncated = true;
        }
        if len == self.offset {
            return out;
        }
        if f.seek(std::io::SeekFrom::Start(self.offset)).is_err() {
            return out;
        }
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        if f.read_to_end(&mut buf).is_err() {
            return out;
        }
        // Consume only up to (and including) the last newline; the
        // remainder is a line still being written.
        let consumed = match buf.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => {
                out.pending_bytes = buf.len() as u64;
                return out;
            }
        };
        self.offset += consumed as u64;
        out.pending_bytes = (buf.len() - consumed) as u64;
        out.lines = String::from_utf8_lossy(&buf[..consumed])
            .lines()
            .map(str::to_string)
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dr-fleet-tail-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn consumes_only_complete_lines() {
        let dir = scratch("partial");
        let path = dir.join("events.ndjson");
        let mut t = StreamTailer::new(&path);
        assert!(t.poll().lines.is_empty(), "missing file yields nothing");

        std::fs::write(&path, "alpha\nbeta\ngam").unwrap();
        let p = t.poll();
        assert_eq!(p.lines, vec!["alpha", "beta"]);
        assert_eq!(p.pending_bytes, 3, "the partial line stays unread");

        // Finishing the line makes it visible — exactly once.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"ma\n").unwrap();
        drop(f);
        let p = t.poll();
        assert_eq!(p.lines, vec!["gamma"]);
        assert_eq!(p.pending_bytes, 0);
        assert!(t.poll().lines.is_empty(), "no re-reads");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_restarts_the_tail() {
        let dir = scratch("trunc");
        let path = dir.join("events.ndjson");
        std::fs::write(&path, "one\ntwo\n").unwrap();
        let mut t = StreamTailer::new(&path);
        assert_eq!(t.poll().lines.len(), 2);

        // A worker restart truncates the file to a shorter stream.
        std::fs::write(&path, "fresh\n").unwrap();
        let p = t.poll();
        assert!(p.truncated);
        assert_eq!(p.lines, vec!["fresh"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_forgets_progress() {
        let dir = scratch("reset");
        let path = dir.join("events.ndjson");
        std::fs::write(&path, "a\nb\n").unwrap();
        let mut t = StreamTailer::new(&path);
        assert_eq!(t.poll().lines.len(), 2);
        t.reset();
        assert_eq!(t.offset(), 0);
        assert_eq!(t.poll().lines, vec!["a", "b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
