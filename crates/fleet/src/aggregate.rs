//! Multi-stream aggregation into one `dr-fleet/v1` NDJSON stream.
//!
//! The [`Aggregator`] owns one [`StreamTailer`] per shard worker plus
//! an in-memory queue for the coordinator's own `dr-events/v1` lines,
//! and merges everything it drains into a single globally-sequenced
//! stream: each merged line is
//!
//! ```json
//! {"schema":"dr-fleet/v1","gseq":N,"worker":0,"seen_s":1.23,"event":{...}}
//! ```
//!
//! where `event` is the original worker line **verbatim** (so the
//! merged stream provably contains every worker event exactly once —
//! byte-for-byte — and stays joinable against the per-worker files),
//! `gseq` is assigned densely from zero (gapless by construction), and
//! `seen_s` stamps the coordinator-clock arrival time used by the
//! timeline export and the anomaly detector.
//!
//! Worker lines are validated before merging: the schema tag must be
//! `dr-events/v1`, the run id must match the id the coordinator pinned
//! into the worker's environment, and `heartbeat`/`shard-done` lines
//! must carry the worker's own shard identity. Lines failing validation
//! are counted per worker (`malformed` / `foreign`) and skipped — a
//! stale stream from a previous run cannot pollute the merge or count
//! as liveness.

use crate::tail::StreamTailer;
use crate::FLEET_SCHEMA;
use dr_obs::json;
use dr_obs::EVENTS_SCHEMA;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One event in the merged fleet stream.
#[derive(Debug, Clone)]
pub struct MergedEvent {
    /// Dense global sequence number (gapless from zero).
    pub gseq: u64,
    /// Source worker index, or `None` for the coordinator's own events.
    pub worker: Option<usize>,
    /// Coordinator-clock arrival time, seconds since aggregation began.
    pub seen_s: f64,
    /// The event's run id.
    pub run: String,
    /// The source stream's own sequence number.
    pub seq: u64,
    /// The source stream's own clock, seconds since its sink started.
    pub t_s: f64,
    /// Event kind (`heartbeat`, `shard-done`, `anomaly`, ...).
    pub kind: String,
    /// The fully parsed event object.
    pub value: json::Value,
    /// The original NDJSON line, verbatim.
    pub raw: String,
}

impl MergedEvent {
    /// One `dr-fleet/v1` NDJSON line (no trailing newline), embedding
    /// the original event verbatim.
    pub fn to_json(&self) -> String {
        let worker = match self.worker {
            Some(i) => i.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":\"{FLEET_SCHEMA}\",\"gseq\":{},\"worker\":{worker},\"seen_s\":{},\"event\":{}}}",
            self.gseq,
            json::number(self.seen_s),
            self.raw
        )
    }

    /// A `u64` field of the embedded event.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.value.get(name).and_then(json::Value::as_u64)
    }

    /// An `f64` field of the embedded event.
    pub fn field_f64(&self, name: &str) -> Option<f64> {
        self.value.get(name).and_then(json::Value::as_f64)
    }

    /// A string field of the embedded event.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        self.value.get(name).and_then(json::Value::as_str)
    }
}

/// Per-worker stream health, updated on every poll.
#[derive(Debug, Clone, Default)]
pub struct WorkerLag {
    /// Validated events merged from this worker.
    pub events: u64,
    /// Lines that failed to parse as `dr-events/v1` JSON.
    pub malformed: u64,
    /// Well-formed lines rejected for a run-id or shard mismatch
    /// (stale streams, crossed paths).
    pub foreign: u64,
    /// Bytes written by the worker but not yet consumed (partial
    /// trailing line) as of the last poll.
    pub pending_bytes: u64,
    /// Arrival time of the last validated event (`None` before any).
    pub last_seen_s: Option<f64>,
}

/// Aggregate summary of a finished (or in-flight) aggregation, the
/// shape the `--metrics-text` exposition renders.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Total merged events (== the next `gseq`).
    pub merged_events: u64,
    /// Merged events that came from the coordinator's own sink.
    pub coordinator_events: u64,
    /// Per-worker lag counters, indexed by shard.
    pub workers: Vec<WorkerLag>,
}

/// The coordinator's own event lines, queued in memory. Handed to an
/// `EventSink` as its writer: the sink writes NDJSON lines into the
/// queue and the aggregator drains complete lines on each poll, merging
/// the coordinator's events through the same gapless sequence as the
/// workers'.
#[derive(Clone, Debug, Default)]
pub struct CoordinatorQueue {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl CoordinatorQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains every complete line, leaving a partial trailing line (a
    /// mid-write snapshot) queued for the next drain.
    fn drain_lines(&self) -> Vec<String> {
        let mut buf = self.buf.lock().expect("coordinator queue poisoned");
        let consumed = match buf.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => return Vec::new(),
        };
        let head: Vec<u8> = buf.drain(..consumed).collect();
        String::from_utf8_lossy(&head)
            .lines()
            .map(str::to_string)
            .collect()
    }
}

impl Write for CoordinatorQueue {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .expect("coordinator queue poisoned")
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct WorkerSource {
    tailer: StreamTailer,
    expected_run: Option<String>,
    shard_of: u64,
    lag: WorkerLag,
}

/// Merges N worker streams plus the coordinator's own events into one
/// gapless `dr-fleet/v1` stream, retaining every merged event for the
/// timeline export and run-end analytics.
pub struct Aggregator {
    start: Instant,
    workers: Vec<WorkerSource>,
    coord: CoordinatorQueue,
    coordinator_events: u64,
    writer: Option<Box<dyn Write + Send>>,
    retained: Vec<MergedEvent>,
}

impl Aggregator {
    /// An aggregator for a swarm of `count` shard workers whose event
    /// files live under `store_root` (`shard-i-of-N.events.ndjson`,
    /// matching the swarm's worker layout).
    pub fn new(store_root: &Path, count: usize) -> Self {
        let workers = (0..count)
            .map(|i| WorkerSource {
                tailer: StreamTailer::new(
                    &store_root.join(format!("shard-{i}-of-{count}.events.ndjson")),
                ),
                expected_run: None,
                shard_of: count as u64,
                lag: WorkerLag::default(),
            })
            .collect();
        Aggregator {
            start: Instant::now(),
            workers,
            coord: CoordinatorQueue::new(),
            coordinator_events: 0,
            writer: None,
            retained: Vec::new(),
        }
    }

    /// Attaches the merged-stream NDJSON writer (builder style).
    pub fn with_writer(mut self, w: Box<dyn Write + Send>) -> Self {
        self.writer = Some(w);
        self
    }

    /// Seconds since aggregation began (the `seen_s` clock).
    pub fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The queue the coordinator's own `EventSink` should write into.
    pub fn coordinator_queue(&self) -> CoordinatorQueue {
        self.coord.clone()
    }

    /// Pins the run id worker `index` is expected to stamp its lines
    /// with, and restarts its tail from byte zero — called when the
    /// coordinator (re-)spawns the shard, whose eager `File::create`
    /// truncates any previous attempt's stream.
    pub fn expect_worker(&mut self, index: usize, run_id: &str) {
        if let Some(w) = self.workers.get_mut(index) {
            w.expected_run = Some(run_id.to_string());
            w.tailer.reset();
        }
    }

    /// Drains every source — coordinator queue first, then workers in
    /// shard order — merging validated events into the fleet stream.
    /// Returns the indices of the newly merged events in [`events`].
    ///
    /// [`events`]: Aggregator::events
    pub fn poll(&mut self) -> std::ops::Range<usize> {
        let from = self.retained.len();
        let seen_s = self.now_s();
        for line in self.coord.drain_lines() {
            if let Some(ev) = parse_event(&line) {
                self.coordinator_events += 1;
                self.push(None, seen_s, ev, line);
            }
        }
        for i in 0..self.workers.len() {
            let poll = self.workers[i].tailer.poll();
            self.workers[i].lag.pending_bytes = poll.pending_bytes;
            for line in poll.lines {
                let Some(ev) = parse_event(&line) else {
                    self.workers[i].lag.malformed += 1;
                    continue;
                };
                if !self.accepts(i, &ev) {
                    self.workers[i].lag.foreign += 1;
                    continue;
                }
                self.workers[i].lag.events += 1;
                self.workers[i].lag.last_seen_s = Some(seen_s);
                self.push(Some(i), seen_s, ev, line);
            }
        }
        from..self.retained.len()
    }

    /// Whether a parsed worker line belongs to this swarm run: the run
    /// id must match the pinned id (when one is pinned), and liveness
    /// kinds must carry the worker's own shard identity.
    fn accepts(&self, index: usize, ev: &ParsedEvent) -> bool {
        let w = &self.workers[index];
        if let Some(expected) = &w.expected_run {
            if &ev.run != expected {
                return false;
            }
        }
        if ev.kind == "heartbeat" || ev.kind == "shard-done" {
            let shard = ev.value.get("shard").and_then(json::Value::as_u64);
            let of = ev.value.get("of").and_then(json::Value::as_u64);
            if shard != Some(index as u64) || of != Some(w.shard_of) {
                return false;
            }
        }
        true
    }

    fn push(&mut self, worker: Option<usize>, seen_s: f64, ev: ParsedEvent, raw: String) {
        let merged = MergedEvent {
            gseq: self.retained.len() as u64,
            worker,
            seen_s,
            run: ev.run,
            seq: ev.seq,
            t_s: ev.t_s,
            kind: ev.kind,
            value: ev.value,
            raw,
        };
        if let Some(w) = &mut self.writer {
            // Like the event sink: losing a line must never fail a run.
            let _ = writeln!(w, "{}", merged.to_json());
        }
        self.retained.push(merged);
    }

    /// Every merged event so far, in global-sequence order.
    pub fn events(&self) -> &[MergedEvent] {
        &self.retained
    }

    /// Per-worker lag for shard `index`.
    pub fn lag(&self, index: usize) -> Option<&WorkerLag> {
        self.workers.get(index).map(|w| &w.lag)
    }

    /// The aggregate summary.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            merged_events: self.retained.len() as u64,
            coordinator_events: self.coordinator_events,
            workers: self.workers.iter().map(|w| w.lag.clone()).collect(),
        }
    }

    /// Flushes the merged-stream writer, if any.
    pub fn flush(&mut self) {
        if let Some(w) = &mut self.writer {
            let _ = w.flush();
        }
    }

    /// Consumes the aggregator, yielding every merged event in global
    /// sequence order (the coordinator hands these to the timeline
    /// export and metrics snapshot after the swarm settles).
    pub fn into_events(self) -> Vec<MergedEvent> {
        self.retained
    }
}

struct ParsedEvent {
    run: String,
    seq: u64,
    t_s: f64,
    kind: String,
    value: json::Value,
}

/// Parses one `dr-events/v1` line; `None` for anything else (garbage,
/// foreign schemas, torn writes).
fn parse_event(line: &str) -> Option<ParsedEvent> {
    let value = json::parse(line).ok()?;
    if value.get("schema").and_then(json::Value::as_str) != Some(EVENTS_SCHEMA) {
        return None;
    }
    Some(ParsedEvent {
        run: value.get("run").and_then(json::Value::as_str)?.to_string(),
        seq: value.get("seq").and_then(json::Value::as_u64)?,
        t_s: value
            .get("t_s")
            .and_then(json::Value::as_f64)
            .unwrap_or(0.0),
        kind: value.get("kind").and_then(json::Value::as_str)?.to_string(),
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_obs::{EventSink, SharedBuf};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dr-fleet-agg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn worker_line(run: &str, seq: u64, kind: &str, shard: u64, of: u64) -> String {
        format!(
            "{{\"schema\":\"dr-events/v1\",\"run\":\"{run}\",\"seq\":{seq},\"t_s\":0.5,\
             \"kind\":\"{kind}\",\"shard\":{shard},\"of\":{of}}}"
        )
    }

    #[test]
    fn merges_gapless_and_embeds_lines_verbatim() {
        let dir = scratch("merge");
        let out = SharedBuf::new();
        let mut agg = Aggregator::new(&dir, 2).with_writer(Box::new(out.clone()));
        agg.expect_worker(0, "r.s0");
        agg.expect_worker(1, "r.s1");
        let l0 = worker_line("r.s0", 0, "heartbeat", 0, 2);
        let l1 = worker_line("r.s1", 0, "heartbeat", 1, 2);
        std::fs::write(dir.join("shard-0-of-2.events.ndjson"), format!("{l0}\n")).unwrap();
        std::fs::write(dir.join("shard-1-of-2.events.ndjson"), format!("{l1}\n")).unwrap();
        let range = agg.poll();
        assert_eq!(range, 0..2);
        let evs = agg.events();
        assert_eq!(evs[0].gseq, 0);
        assert_eq!(evs[1].gseq, 1);
        assert_eq!(evs[0].worker, Some(0));
        assert_eq!(evs[1].worker, Some(1));
        assert_eq!(evs[0].raw, l0, "original line embedded verbatim");
        // The written stream parses, is gapless, and round-trips the line.
        for (i, line) in out.contents().lines().enumerate() {
            let v = json::parse(line).unwrap();
            assert_eq!(
                v.get("schema").and_then(json::Value::as_str),
                Some(FLEET_SCHEMA)
            );
            assert_eq!(v.get("gseq").and_then(json::Value::as_u64), Some(i as u64));
            assert_eq!(
                v.path(&["event", "kind"]).and_then(json::Value::as_str),
                Some("heartbeat")
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_foreign_runs_and_wrong_shards() {
        let dir = scratch("foreign");
        let mut agg = Aggregator::new(&dir, 2);
        agg.expect_worker(0, "r.s0");
        let stale = worker_line("old-run", 0, "heartbeat", 0, 2);
        let crossed = worker_line("r.s0", 1, "heartbeat", 1, 2);
        let good = worker_line("r.s0", 2, "heartbeat", 0, 2);
        let garbage = "{\"kind\":\"heartbeat\" <torn";
        std::fs::write(
            dir.join("shard-0-of-2.events.ndjson"),
            format!("{stale}\n{crossed}\n{good}\n{garbage}\n"),
        )
        .unwrap();
        let range = agg.poll();
        assert_eq!(range.len(), 1, "only the matching line merges");
        let lag = agg.lag(0).unwrap();
        assert_eq!(lag.events, 1);
        assert_eq!(lag.foreign, 2);
        assert_eq!(lag.malformed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coordinator_sink_merges_through_the_queue() {
        let dir = scratch("coord");
        let mut agg = Aggregator::new(&dir, 1);
        let sink = EventSink::new("coord-run").with_writer(Box::new(agg.coordinator_queue()));
        sink.emit("worker-spawn", &[("shard", 0u64.into())]);
        sink.flush();
        let range = agg.poll();
        assert_eq!(range.len(), 1);
        let ev = &agg.events()[0];
        assert_eq!(ev.worker, None);
        assert_eq!(ev.kind, "worker-spawn");
        assert_eq!(ev.run, "coord-run");
        assert_eq!(agg.stats().coordinator_events, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn respawn_re_expects_and_re_tails() {
        let dir = scratch("respawn");
        let path = dir.join("shard-0-of-1.events.ndjson");
        let mut agg = Aggregator::new(&dir, 1);
        agg.expect_worker(0, "r.s0");
        std::fs::write(&path, format!("{}\n", worker_line("r.s0", 0, "eval", 0, 1))).unwrap();
        assert_eq!(agg.poll().len(), 1);
        // The re-issued worker truncates its stream; the coordinator
        // re-pins and the tail restarts at zero.
        std::fs::write(&path, format!("{}\n", worker_line("r.s0", 0, "eval", 0, 1))).unwrap();
        agg.expect_worker(0, "r.s0");
        assert_eq!(agg.poll().len(), 1);
        assert_eq!(agg.stats().merged_events, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
