//! Property: the fleet `--progress` rollup is invariant under stream
//! interleaving. Workers write their event files concurrently, so the
//! coordinator can drain them in any order that preserves each stream's
//! own sequence — folding any such interleaving must yield exactly the
//! final status line the sorted merge yields.

use dr_fleet::{FleetProgress, MergedEvent};
use dr_obs::json;
use proptest::prelude::*;

fn event(worker: Option<usize>, seen_s: f64, kind: &str, fields: &[(&str, u64)]) -> MergedEvent {
    let mut raw = format!(
        "{{\"schema\":\"dr-events/v1\",\"run\":\"r\",\"seq\":0,\"t_s\":{},\"kind\":\"{kind}\"",
        json::number(seen_s)
    );
    for (k, v) in fields {
        raw.push_str(&format!(",\"{k}\":{v}"));
    }
    raw.push('}');
    MergedEvent {
        gseq: 0,
        worker,
        seen_s,
        run: "r".into(),
        seq: 0,
        t_s: seen_s,
        kind: kind.into(),
        value: json::parse(&raw).unwrap(),
        raw,
    }
}

/// Builds each worker's time-ordered stream from raw (tick, done)
/// pairs: heartbeats with a shared total, the last event promoted to a
/// `shard-done`, plus one coordinator stream carrying an anomaly and a
/// quarantine notice.
fn build_streams(raw: &[Vec<(u64, u64)>]) -> Vec<Vec<MergedEvent>> {
    let workers = raw.len();
    let mut streams: Vec<Vec<MergedEvent>> = Vec::with_capacity(workers + 1);
    for (i, ticks) in raw.iter().enumerate() {
        let mut ticks = ticks.clone();
        ticks.sort_unstable();
        let last = ticks.len() - 1;
        let stream = ticks
            .iter()
            .enumerate()
            .map(|(n, &(tick, done))| {
                let seen_s = tick as f64 / 100.0;
                if n == last && i % 2 == 0 {
                    event(
                        Some(i),
                        seen_s,
                        "shard-done",
                        &[
                            ("shard", i as u64),
                            ("of", workers as u64),
                            ("records", done),
                            ("store_hits", done / 2),
                        ],
                    )
                } else {
                    event(
                        Some(i),
                        seen_s,
                        "heartbeat",
                        &[
                            ("shard", i as u64),
                            ("of", workers as u64),
                            ("done", done),
                            ("total", 50),
                        ],
                    )
                }
            })
            .collect();
        streams.push(stream);
    }
    streams.push(vec![
        event(None, 3.0, "anomaly", &[("worker", 0)]),
        event(None, 4.0, "shard-quarantined", &[("shard", 0)]),
    ]);
    streams
}

/// Interleaves the streams in pick-driven order, preserving each
/// stream's internal sequence.
fn interleave(streams: &[Vec<MergedEvent>], picks: &[u64]) -> Vec<MergedEvent> {
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::new();
    let mut pick_at = 0usize;
    loop {
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].len())
            .collect();
        if live.is_empty() {
            return out;
        }
        let pick = picks.get(pick_at).copied().unwrap_or(0) as usize % live.len();
        pick_at += 1;
        let src = live[pick];
        out.push(streams[src][cursors[src]].clone());
        cursors[src] += 1;
    }
}

fn fold(workers: usize, events: &[MergedEvent]) -> String {
    let mut p = FleetProgress::with_tty(workers, false);
    for ev in events {
        p.observe(ev);
    }
    p.snapshot_line()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shuffled_interleavings_fold_to_the_sorted_merge_line(
        raw in proptest::collection::vec(
            proptest::collection::vec((0u64..1000, 0u64..=50), 1..8),
            1..5,
        ),
        picks in proptest::collection::vec(any::<u64>(), 64),
    ) {
        let workers = raw.len();
        let streams = build_streams(&raw);

        // Baseline: the fully sorted merge (global arrival order).
        let mut sorted: Vec<MergedEvent> =
            streams.iter().flatten().cloned().collect();
        sorted.sort_by(|a, b| a.seen_s.total_cmp(&b.seen_s));
        let expect = fold(workers, &sorted);

        // Any order-preserving interleaving folds to the same line.
        let shuffled = interleave(&streams, &picks);
        prop_assert_eq!(shuffled.len(), sorted.len());
        let got = fold(workers, &shuffled);
        prop_assert_eq!(&got, &expect, "interleaving changed the rollup");
    }
}
