//! Cost model binding the halo decomposition to the platform simulator:
//! exact face sizes per dimension, stencil kernel estimates, and the
//! per-dimension point-to-point patterns.

use crate::dag::{k_halo, k_pack, k_unpack, K_BOUNDARY, K_INTERIOR};
use crate::grid::RankGrid;
use dr_dag::{CommKey, CostKey};
use dr_sim::{CommPattern, Workload};

/// First-order stencil/copy timing model (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilModel {
    /// Time per interior cell of the stencil kernel.
    pub stencil_sec_per_cell: f64,
    /// Fixed cost of any kernel invocation.
    pub kernel_fixed: f64,
    /// Time per face cell gathered/scattered by pack/unpack.
    pub copy_sec_per_cell: f64,
}

impl Default for StencilModel {
    fn default() -> Self {
        StencilModel {
            stencil_sec_per_cell: 6e-11,
            kernel_fixed: 3e-6,
            copy_sec_per_cell: 4e-10,
        }
    }
}

/// The halo problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloSpec {
    /// Rank topology.
    pub topo: RankGrid,
    /// Interior cells per rank per dimension.
    pub local_n: [usize; 3],
    /// Number of dimensions actually exchanging (matches the DAG config).
    pub dims: usize,
    /// Kernel timing model.
    pub model: StencilModel,
}

/// [`Workload`] implementation for the halo exchange.
#[derive(Debug, Clone)]
pub struct HaloWorkload {
    spec: HaloSpec,
}

impl HaloWorkload {
    /// Builds the workload; face sizes and neighbour sets derive from the
    /// topology exactly.
    pub fn new(spec: HaloSpec) -> Self {
        assert!((1..=3).contains(&spec.dims));
        HaloWorkload { spec }
    }

    fn face_cells(&self, dim: usize) -> usize {
        let n = self.spec.local_n;
        match dim {
            0 => n[1] * n[2],
            1 => n[0] * n[2],
            _ => n[0] * n[1],
        }
    }

    /// Interior cells not adjacent to any subdomain face (computed by the
    /// interior kernel while communication is in flight).
    fn interior_cells(&self) -> usize {
        let n = self.spec.local_n;
        n.iter().map(|&c| c.saturating_sub(2)).product()
    }

    fn boundary_cells(&self) -> usize {
        let n: usize = self.spec.local_n.iter().product();
        n - self.interior_cells()
    }
}

impl Workload for HaloWorkload {
    fn num_ranks(&self) -> usize {
        self.spec.topo.num_ranks()
    }

    fn cost(&self, rank: usize, key: &CostKey) -> Option<f64> {
        if rank >= self.num_ranks() {
            return None;
        }
        let m = &self.spec.model;
        if key.0 == K_INTERIOR {
            return Some(m.kernel_fixed + self.interior_cells() as f64 * m.stencil_sec_per_cell);
        }
        if key.0 == K_BOUNDARY {
            return Some(m.kernel_fixed + self.boundary_cells() as f64 * m.stencil_sec_per_cell);
        }
        for d in 0..self.spec.dims {
            // Pack/unpack move up to two faces (one per side).
            let sides = [-1isize, 1]
                .iter()
                .filter(|&&dir| self.spec.topo.neighbor(rank, d, dir).is_some())
                .count();
            let cells = (self.face_cells(d) * sides) as f64;
            if key.0 == k_pack(d) || key.0 == k_unpack(d) {
                return Some(m.kernel_fixed + cells * m.copy_sec_per_cell);
            }
        }
        None
    }

    fn comm(&self, rank: usize, key: &CommKey) -> Option<CommPattern> {
        if rank >= self.num_ranks() {
            return None;
        }
        for d in 0..self.spec.dims {
            if key.0 == k_halo(d) {
                let bytes = self.face_cells(d) as u64 * 8;
                let mut pat = CommPattern::default();
                for dir in [-1isize, 1] {
                    if let Some(peer) = self.spec.topo.neighbor(rank, d, dir) {
                        pat.sends.push((peer, bytes));
                        pat.recvs.push((peer, bytes));
                    }
                }
                return Some(pat);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HaloSpec {
        HaloSpec {
            topo: RankGrid::new([2, 2, 2]),
            local_n: [32, 32, 32],
            dims: 3,
            model: StencilModel::default(),
        }
    }

    #[test]
    fn all_keys_resolve() {
        let w = HaloWorkload::new(spec());
        for rank in 0..8 {
            assert!(w.cost(rank, &CostKey::new(K_INTERIOR)).unwrap() > 0.0);
            assert!(w.cost(rank, &CostKey::new(K_BOUNDARY)).unwrap() > 0.0);
            for d in 0..3 {
                assert!(w.cost(rank, &CostKey::new(k_pack(d))).unwrap() > 0.0);
                assert!(w.cost(rank, &CostKey::new(k_unpack(d))).unwrap() > 0.0);
                assert!(w.comm(rank, &CommKey::new(k_halo(d))).is_some());
            }
        }
        assert!(w.cost(0, &CostKey::new("nope")).is_none());
        assert!(w.comm(0, &CommKey::new("nope")).is_none());
    }

    #[test]
    fn patterns_are_pairwise_symmetric() {
        let w = HaloWorkload::new(spec());
        for d in 0..3 {
            let key = CommKey::new(k_halo(d));
            for rank in 0..8 {
                let pat = w.comm(rank, &key).unwrap();
                for &(peer, bytes) in &pat.sends {
                    let pp = w.comm(peer, &key).unwrap();
                    assert!(pp.recvs.contains(&(rank, bytes)));
                }
            }
        }
    }

    #[test]
    fn corner_ranks_have_fewer_neighbours_than_center() {
        // 3×3×3 topology: the center rank exchanges both sides in every
        // dimension; a corner rank only one.
        let w = HaloWorkload::new(HaloSpec {
            topo: RankGrid::new([3, 3, 3]),
            local_n: [16, 16, 16],
            dims: 3,
            model: StencilModel::default(),
        });
        let corner = 0;
        let center = RankGrid::new([3, 3, 3]).rank_of([1, 1, 1]);
        for d in 0..3 {
            let key = CommKey::new(k_halo(d));
            assert_eq!(w.comm(corner, &key).unwrap().sends.len(), 1);
            assert_eq!(w.comm(center, &key).unwrap().sends.len(), 2);
            // Pack cost scales with the number of sides packed.
            let pc = w.cost(corner, &CostKey::new(k_pack(d))).unwrap();
            let cc = w.cost(center, &CostKey::new(k_pack(d))).unwrap();
            assert!(cc > pc);
        }
    }

    #[test]
    fn interior_plus_boundary_covers_the_block() {
        let w = HaloWorkload::new(spec());
        assert_eq!(w.interior_cells() + w.boundary_cells(), 32 * 32 * 32);
    }
}
