//! 3D grids and the distributed Jacobi sweep the halo-exchange DAG
//! schedules.
//!
//! The numeric content exists to *validate the decomposition*: packing
//! faces, exchanging them between rank subdomains, unpacking into ghost
//! layers, and sweeping must produce exactly the same field as a serial
//! sweep of the global grid. The DAG then schedules precisely these
//! operations (per dimension) on the platform simulator.

/// A dense 3D scalar field in x-fastest layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Cells per dimension.
    pub n: [usize; 3],
    /// `data[(z*ny + y)*nx + x]`.
    pub data: Vec<f64>,
}

impl Grid3 {
    /// A zero-filled grid.
    pub fn zeros(n: [usize; 3]) -> Self {
        Grid3 {
            n,
            data: vec![0.0; n[0] * n[1] * n[2]],
        }
    }

    /// Builds a grid from a coordinate function.
    pub fn from_fn(n: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f64) -> Self {
        let mut g = Grid3::zeros(n);
        for z in 0..n[2] {
            for y in 0..n[1] {
                for x in 0..n[0] {
                    let i = g.idx(x, y, z);
                    g.data[i] = f(x, y, z);
                }
            }
        }
        g
    }

    /// Linear index of a cell.
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.n[0] && y < self.n[1] && z < self.n[2]);
        (z * self.n[1] + y) * self.n[0] + x
    }

    /// Cell value, 0.0 outside the domain (zero Dirichlet boundary).
    pub fn get_or_zero(&self, x: isize, y: isize, z: isize) -> f64 {
        if x < 0 || y < 0 || z < 0 {
            return 0.0;
        }
        let (x, y, z) = (x as usize, y as usize, z as usize);
        if x >= self.n[0] || y >= self.n[1] || z >= self.n[2] {
            return 0.0;
        }
        self.data[self.idx(x, y, z)]
    }
}

/// One serial 7-point Jacobi sweep with zero Dirichlet boundaries:
/// `out = (sum of the six face neighbours) / 6`.
pub fn jacobi_step(g: &Grid3) -> Grid3 {
    let mut out = Grid3::zeros(g.n);
    for z in 0..g.n[2] {
        for y in 0..g.n[1] {
            for x in 0..g.n[0] {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let sum = g.get_or_zero(xi - 1, yi, zi)
                    + g.get_or_zero(xi + 1, yi, zi)
                    + g.get_or_zero(xi, yi - 1, zi)
                    + g.get_or_zero(xi, yi + 1, zi)
                    + g.get_or_zero(xi, yi, zi - 1)
                    + g.get_or_zero(xi, yi, zi + 1);
                let i = out.idx(x, y, z);
                out.data[i] = sum / 6.0;
            }
        }
    }
    out
}

/// A Cartesian rank topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankGrid {
    /// Ranks per dimension.
    pub p: [usize; 3],
}

impl RankGrid {
    /// Creates a topology; every dimension needs at least one rank.
    pub fn new(p: [usize; 3]) -> Self {
        assert!(p.iter().all(|&d| d >= 1), "empty rank grid");
        RankGrid { p }
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.p[0] * self.p[1] * self.p[2]
    }

    /// Rank coordinates (x-fastest).
    pub fn coord_of(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.num_ranks());
        [
            rank % self.p[0],
            (rank / self.p[0]) % self.p[1],
            rank / (self.p[0] * self.p[1]),
        ]
    }

    /// Rank id of a coordinate.
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        (c[2] * self.p[1] + c[1]) * self.p[0] + c[0]
    }

    /// Neighbour of `rank` along `dim` in direction `dir` (−1 or +1),
    /// `None` at the domain boundary (non-periodic).
    pub fn neighbor(&self, rank: usize, dim: usize, dir: isize) -> Option<usize> {
        let mut c = self.coord_of(rank);
        let moved = c[dim] as isize + dir;
        if moved < 0 || moved as usize >= self.p[dim] {
            return None;
        }
        c[dim] = moved as usize;
        Some(self.rank_of(c))
    }
}

/// One rank's subdomain with a one-cell ghost layer on every side.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalBlock {
    /// Interior cells per dimension.
    pub n: [usize; 3],
    /// Padded field of `(n+2)^3` cells; ghosts stay 0 at physical
    /// boundaries (zero Dirichlet).
    pub data: Vec<f64>,
}

impl LocalBlock {
    fn zeros(n: [usize; 3]) -> Self {
        let m = [n[0] + 2, n[1] + 2, n[2] + 2];
        LocalBlock {
            n,
            data: vec![0.0; m[0] * m[1] * m[2]],
        }
    }

    /// Linear index into the padded array (padded coordinates: interior
    /// is `1..=n`).
    pub fn pidx(&self, x: usize, y: usize, z: usize) -> usize {
        let m = [self.n[0] + 2, self.n[1] + 2, self.n[2] + 2];
        debug_assert!(x < m[0] && y < m[1] && z < m[2]);
        (z * m[1] + y) * m[0] + x
    }

    /// Gathers the boundary face of the *interior* along `dim`, side
    /// `dir` (−1 = low face, +1 = high face), in (a,b) raster order of
    /// the remaining two dimensions — the Pack kernel.
    pub fn pack_face(&self, dim: usize, dir: isize) -> Vec<f64> {
        let fixed = if dir < 0 { 1 } else { self.n[dim] };
        self.face_coords(dim)
            .map(|(a, b)| {
                let c = self.face_cell(dim, fixed, a, b);
                self.data[self.pidx(c[0], c[1], c[2])]
            })
            .collect()
    }

    /// Scatters a received face buffer into the ghost layer along `dim`,
    /// side `dir` — the Unpack kernel. Buffer order must match
    /// [`LocalBlock::pack_face`] of the sender's opposite face.
    pub fn unpack_face(&mut self, dim: usize, dir: isize, buf: &[f64]) {
        let fixed = if dir < 0 { 0 } else { self.n[dim] + 1 };
        let coords: Vec<(usize, usize)> = self.face_coords(dim).collect();
        assert_eq!(coords.len(), buf.len(), "face size mismatch");
        for ((a, b), &v) in coords.into_iter().zip(buf) {
            let c = self.face_cell(dim, fixed, a, b);
            let i = self.pidx(c[0], c[1], c[2]);
            self.data[i] = v;
        }
    }

    /// Number of cells in a face orthogonal to `dim`.
    pub fn face_len(&self, dim: usize) -> usize {
        let others: Vec<usize> = (0..3).filter(|&d| d != dim).map(|d| self.n[d]).collect();
        others[0] * others[1]
    }

    fn face_coords(&self, dim: usize) -> impl Iterator<Item = (usize, usize)> {
        let others: Vec<usize> = (0..3).filter(|&d| d != dim).map(|d| self.n[d]).collect();
        let (na, nb) = (others[0], others[1]);
        (0..nb).flat_map(move |b| (0..na).map(move |a| (a + 1, b + 1)))
    }

    fn face_cell(&self, dim: usize, fixed: usize, a: usize, b: usize) -> [usize; 3] {
        let mut c = [0usize; 3];
        c[dim] = fixed;
        let mut rest = [a, b].into_iter();
        for (d, slot) in c.iter_mut().enumerate() {
            if d != dim {
                *slot = rest.next().expect("two free dims");
            }
        }
        c
    }
}

/// A globally consistent distributed grid: the functional model of the
/// program the halo DAG schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedGrid {
    /// Rank topology.
    pub topo: RankGrid,
    /// Interior cells per rank per dimension.
    pub local_n: [usize; 3],
    /// Per-rank padded blocks.
    pub blocks: Vec<LocalBlock>,
}

impl DistributedGrid {
    /// Scatters a global grid across a rank topology. Each global
    /// dimension must divide evenly.
    pub fn from_global(g: &Grid3, topo: RankGrid) -> Self {
        let local_n = [g.n[0] / topo.p[0], g.n[1] / topo.p[1], g.n[2] / topo.p[2]];
        for (d, (&ln, (&p, &gn))) in local_n.iter().zip(topo.p.iter().zip(&g.n)).enumerate() {
            assert_eq!(ln * p, gn, "dimension {d} must divide");
            assert!(ln >= 1);
        }
        let mut blocks = Vec::with_capacity(topo.num_ranks());
        for rank in 0..topo.num_ranks() {
            let c = topo.coord_of(rank);
            let mut blk = LocalBlock::zeros(local_n);
            for z in 0..local_n[2] {
                for y in 0..local_n[1] {
                    for x in 0..local_n[0] {
                        let gidx = g.idx(
                            c[0] * local_n[0] + x,
                            c[1] * local_n[1] + y,
                            c[2] * local_n[2] + z,
                        );
                        let i = blk.pidx(x + 1, y + 1, z + 1);
                        blk.data[i] = g.data[gidx];
                    }
                }
            }
            blocks.push(blk);
        }
        DistributedGrid {
            topo,
            local_n,
            blocks,
        }
    }

    /// Pack → exchange → unpack for every dimension and side: after this,
    /// every interior ghost layer holds the neighbour's boundary values
    /// (physical-boundary ghosts stay 0).
    pub fn exchange_ghosts(&mut self) {
        for dim in 0..3 {
            for dir in [-1isize, 1] {
                // Pack all sends first (SPMD phase), then deliver.
                let packed: Vec<Option<(usize, Vec<f64>)>> = (0..self.topo.num_ranks())
                    .map(|rank| {
                        self.topo
                            .neighbor(rank, dim, dir)
                            .map(|peer| (peer, self.blocks[rank].pack_face(dim, dir)))
                    })
                    .collect();
                for (rank, send) in packed.into_iter().enumerate() {
                    let _ = rank;
                    if let Some((peer, buf)) = send {
                        // The receiver's ghost is on the side facing us.
                        self.blocks[peer].unpack_face(dim, -dir, &buf);
                    }
                }
            }
        }
    }

    /// One distributed Jacobi sweep: assumes ghosts are current (call
    /// [`DistributedGrid::exchange_ghosts`] first).
    pub fn jacobi_step(&mut self) {
        let n = self.local_n;
        for blk in &mut self.blocks {
            let mut out = vec![0.0; blk.data.len()];
            for z in 1..=n[2] {
                for y in 1..=n[1] {
                    for x in 1..=n[0] {
                        let sum = blk.data[blk.pidx(x - 1, y, z)]
                            + blk.data[blk.pidx(x + 1, y, z)]
                            + blk.data[blk.pidx(x, y - 1, z)]
                            + blk.data[blk.pidx(x, y + 1, z)]
                            + blk.data[blk.pidx(x, y, z - 1)]
                            + blk.data[blk.pidx(x, y, z + 1)];
                        out[blk.pidx(x, y, z)] = sum / 6.0;
                    }
                }
            }
            // Interior only; ghosts are refreshed by the next exchange.
            for z in 1..=n[2] {
                for y in 1..=n[1] {
                    for x in 1..=n[0] {
                        let i = blk.pidx(x, y, z);
                        blk.data[i] = out[i];
                    }
                }
            }
        }
    }

    /// Gathers the distributed interiors back into a global grid.
    pub fn gather(&self) -> Grid3 {
        let n = [
            self.local_n[0] * self.topo.p[0],
            self.local_n[1] * self.topo.p[1],
            self.local_n[2] * self.topo.p[2],
        ];
        let mut g = Grid3::zeros(n);
        #[allow(clippy::needless_range_loop)] // indices are the clearest form here
        for rank in 0..self.topo.num_ranks() {
            let c = self.topo.coord_of(rank);
            let blk = &self.blocks[rank];
            for z in 0..self.local_n[2] {
                for y in 0..self.local_n[1] {
                    for x in 0..self.local_n[0] {
                        let gi = g.idx(
                            c[0] * self.local_n[0] + x,
                            c[1] * self.local_n[1] + y,
                            c[2] * self.local_n[2] + z,
                        );
                        g.data[gi] = blk.data[blk.pidx(x + 1, y + 1, z + 1)];
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_grid(n: [usize; 3]) -> Grid3 {
        Grid3::from_fn(n, |x, y, z| ((x * 31 + y * 17 + z * 7) % 23) as f64 - 11.0)
    }

    #[test]
    fn rank_grid_round_trips_coordinates() {
        let t = RankGrid::new([2, 3, 2]);
        assert_eq!(t.num_ranks(), 12);
        for r in 0..t.num_ranks() {
            assert_eq!(t.rank_of(t.coord_of(r)), r);
        }
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let t = RankGrid::new([2, 2, 2]);
        let origin = t.rank_of([0, 0, 0]);
        assert_eq!(t.neighbor(origin, 0, -1), None);
        assert_eq!(t.neighbor(origin, 0, 1), Some(t.rank_of([1, 0, 0])));
        assert_eq!(t.neighbor(origin, 2, 1), Some(t.rank_of([0, 0, 1])));
    }

    #[test]
    fn scatter_gather_is_identity() {
        let g = test_grid([4, 6, 4]);
        let d = DistributedGrid::from_global(&g, RankGrid::new([2, 3, 2]));
        assert_eq!(d.gather(), g);
    }

    #[test]
    fn pack_unpack_face_round_trip() {
        let g = test_grid([4, 4, 4]);
        let d = DistributedGrid::from_global(&g, RankGrid::new([2, 1, 1]));
        // Rank 0's high-x face packed and unpacked into rank 1's low-x
        // ghost must equal rank 0's boundary cells.
        let buf = d.blocks[0].pack_face(0, 1);
        assert_eq!(buf.len(), d.blocks[0].face_len(0));
        let mut blk1 = d.blocks[1].clone();
        blk1.unpack_face(0, -1, &buf);
        for z in 1..=2usize {
            for y in 1..=2usize {
                assert_eq!(
                    blk1.data[blk1.pidx(0, y, z)],
                    d.blocks[0].data[d.blocks[0].pidx(2, y, z)]
                );
            }
        }
    }

    #[test]
    fn distributed_jacobi_matches_serial_one_step() {
        let g = test_grid([6, 6, 6]);
        let want = jacobi_step(&g);
        for p in [[1, 1, 1], [2, 1, 1], [2, 3, 1], [2, 3, 2], [3, 2, 3]] {
            let mut d = DistributedGrid::from_global(&g, RankGrid::new(p));
            d.exchange_ghosts();
            d.jacobi_step();
            let got = d.gather();
            for (i, (a, b)) in got.data.iter().zip(&want.data).enumerate() {
                assert!((a - b).abs() < 1e-12, "p={p:?} cell {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn distributed_jacobi_matches_serial_multiple_steps() {
        let g = test_grid([4, 4, 8]);
        let mut serial = g.clone();
        let mut d = DistributedGrid::from_global(&g, RankGrid::new([2, 2, 2]));
        for _ in 0..5 {
            serial = jacobi_step(&serial);
            d.exchange_ghosts();
            d.jacobi_step();
        }
        let got = d.gather();
        for (a, b) in got.data.iter().zip(&serial.data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_preserves_zero_field() {
        let g = Grid3::zeros([5, 5, 5]);
        assert_eq!(jacobi_step(&g), g);
        let mut d = DistributedGrid::from_global(&g, RankGrid::new([1, 1, 5]));
        d.exchange_ghosts();
        d.jacobi_step();
        assert_eq!(d.gather(), g);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_decomposition_panics() {
        DistributedGrid::from_global(&test_grid([5, 4, 4]), RankGrid::new([2, 2, 2]));
    }
}
