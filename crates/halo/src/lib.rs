//! # dr-halo — the 3D halo-exchange workload
//!
//! The extension named in the paper's future work: "the work is currently
//! being extended to 3D halo-exchange communication, modeling
//! fine-grained communication operations in each dimension."
//!
//! * [`Grid3`] / [`DistributedGrid`] — a distributed 7-point Jacobi
//!   stencil whose pack/exchange/unpack/sweep decomposition is validated
//!   numerically against the serial sweep;
//! * [`halo_dag`] — the per-dimension program DAG (pack → post → wait →
//!   unpack chains feeding a boundary kernel, with an independent
//!   interior kernel);
//! * [`HaloWorkload`] / [`StencilModel`] — exact face sizes and stencil
//!   estimates for the platform simulator;
//! * [`HaloScenario`] — everything assembled for exploration. The 3D
//!   space has >10¹² traversals: MCTS territory by construction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod dag;
mod grid;
mod scenario;

pub use cost::{HaloSpec, HaloWorkload, StencilModel};
pub use dag::{halo_dag, k_halo, k_pack, k_unpack, HaloDagConfig, DIMS, K_BOUNDARY, K_INTERIOR};
pub use grid::{jacobi_step, DistributedGrid, Grid3, LocalBlock, RankGrid};
pub use scenario::HaloScenario;
