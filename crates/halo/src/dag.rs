//! The halo-exchange program DAG: per-dimension pack / post / wait /
//! unpack chains feeding a boundary stencil kernel, with an independent
//! interior stencil kernel — the structure the paper's future work
//! describes ("3D halo-exchange communication modeling fine-grained
//! communication operations in each dimension").

use dr_dag::{CommKey, CostKey, DagBuilder, DagError, ProgramDag};

/// Dimension suffixes.
pub const DIMS: [&str; 3] = ["x", "y", "z"];
/// Cost key of the interior stencil kernel (independent of the exchange).
pub const K_INTERIOR: &str = "Interior";
/// Cost key of the boundary stencil kernel (needs every unpacked face).
pub const K_BOUNDARY: &str = "Boundary";

/// Cost key of the pack kernel for one dimension.
pub fn k_pack(dim: usize) -> String {
    format!("Pack-{}", DIMS[dim])
}

/// Cost key of the unpack kernel for one dimension.
pub fn k_unpack(dim: usize) -> String {
    format!("Unpack-{}", DIMS[dim])
}

/// Communication key of one dimension's exchange.
pub fn k_halo(dim: usize) -> String {
    format!("halo-{}", DIMS[dim])
}

/// Structural options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloDagConfig {
    /// Number of dimensions with communication (1–3). Lower-dimensional
    /// variants keep the space enumerable for testing.
    pub dims: usize,
}

impl Default for HaloDagConfig {
    fn default() -> Self {
        HaloDagConfig { dims: 3 }
    }
}

/// Builds the halo-exchange DAG. Per dimension `d`:
/// `Pack-d → PostSend-d → WaitSend-d`, `PostRecv-d → WaitRecv-d`,
/// cross-dimension deadlock-freedom edges (all posts before any wait),
/// and `WaitRecv-d → Unpack-d → Boundary`. `Interior` is independent.
pub fn halo_dag(cfg: &HaloDagConfig) -> Result<ProgramDag, DagError> {
    assert!((1..=3).contains(&cfg.dims), "1..=3 dimensions");
    let mut b = DagBuilder::new();
    let _interior = b.add(
        K_INTERIOR,
        dr_dag::OpSpec::GpuKernel(CostKey::new(K_INTERIOR)),
    );
    let boundary = b.add(
        K_BOUNDARY,
        dr_dag::OpSpec::GpuKernel(CostKey::new(K_BOUNDARY)),
    );
    let mut post_sends = Vec::new();
    let mut post_recvs = Vec::new();
    let mut wait_sends = Vec::new();
    let mut wait_recvs = Vec::new();
    #[allow(clippy::needless_range_loop)] // indices are the clearest form here
    for d in 0..cfg.dims {
        let halo = CommKey::new(k_halo(d));
        let name = DIMS[d];
        let pack = b.add(
            format!("Pack-{name}"),
            dr_dag::OpSpec::GpuKernel(CostKey::new(k_pack(d))),
        );
        let ps = b.add(
            format!("PostSend-{name}"),
            dr_dag::OpSpec::PostSends(halo.clone()),
        );
        let pr = b.add(
            format!("PostRecv-{name}"),
            dr_dag::OpSpec::PostRecvs(halo.clone()),
        );
        let ws = b.add(
            format!("WaitSend-{name}"),
            dr_dag::OpSpec::WaitSends(halo.clone()),
        );
        let wr = b.add(format!("WaitRecv-{name}"), dr_dag::OpSpec::WaitRecvs(halo));
        let unpack = b.add(
            format!("Unpack-{name}"),
            dr_dag::OpSpec::GpuKernel(CostKey::new(k_unpack(d))),
        );
        b.edge(pack, ps);
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(wr, unpack);
        b.edge(unpack, boundary);
        post_sends.push(ps);
        post_recvs.push(pr);
        wait_sends.push(ws);
        wait_recvs.push(wr);
    }
    for &ps in &post_sends {
        for &wr in &wait_recvs {
            b.edge(ps, wr);
        }
    }
    for &pr in &post_recvs {
        for &ws in &wait_sends {
            b.edge(pr, ws);
        }
    }
    Ok(b.build().expect("the halo DAG is statically valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::DecisionSpace;

    #[test]
    fn three_dim_dag_has_all_vertices() {
        let dag = halo_dag(&HaloDagConfig::default()).unwrap();
        assert_eq!(dag.user_vertices().count(), 2 + 3 * 6);
        for d in DIMS {
            for op in [
                "Pack", "PostSend", "PostRecv", "WaitSend", "WaitRecv", "Unpack",
            ] {
                assert!(dag.by_name(&format!("{op}-{d}")).is_some());
            }
        }
    }

    #[test]
    fn one_dim_space_is_enumerable() {
        let dag = halo_dag(&HaloDagConfig { dims: 1 }).unwrap();
        let space = DecisionSpace::new(dag, 2).unwrap();
        let count = space.count_traversals();
        assert!(count > 100 && count < 2_000_000, "count {count}");
        // Spot-check validity on a sample.
        let mut prefix = space.empty_prefix();
        let t = space.complete_with(&mut prefix, |_| 0);
        space.validate(&t).unwrap();
    }

    #[test]
    fn three_dim_space_is_astronomical_but_countable() {
        let dag = halo_dag(&HaloDagConfig::default()).unwrap();
        let space = DecisionSpace::new(dag, 2).unwrap();
        assert!(space.count_traversals() > 1_000_000_000_000u128);
    }

    #[test]
    fn boundary_needs_every_unpack() {
        let dag = halo_dag(&HaloDagConfig::default()).unwrap();
        let space = DecisionSpace::new(dag, 1).unwrap();
        let boundary = space.op_by_name(K_BOUNDARY).unwrap();
        for d in DIMS {
            let unpack = space.op_by_name(&format!("Unpack-{d}")).unwrap();
            assert!(space.op_preds(boundary).contains(&unpack));
        }
    }
}
