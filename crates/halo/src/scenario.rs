//! Ready-made halo-exchange exploration scenarios.

use crate::cost::{HaloSpec, HaloWorkload, StencilModel};
use crate::dag::{halo_dag, HaloDagConfig};
use crate::grid::RankGrid;
use dr_dag::{build_schedule, DecisionSpace, Traversal};
use dr_sim::{benchmark, BenchConfig, BenchResult, CompiledProgram, Platform, SimError};

/// A fully assembled halo-exchange exploration problem.
#[derive(Debug, Clone)]
pub struct HaloScenario {
    /// The traversal decision space.
    pub space: DecisionSpace,
    /// The topology-derived workload.
    pub workload: HaloWorkload,
    /// The platform the implementations run on.
    pub platform: Platform,
}

impl HaloScenario {
    /// Assembles a scenario.
    pub fn build(spec: HaloSpec, streams: usize, platform: Platform) -> Self {
        let dag = halo_dag(&HaloDagConfig { dims: spec.dims }).expect("static halo DAG");
        let space = DecisionSpace::new(dag, streams).expect("halo space fits in 64 ops");
        HaloScenario {
            space,
            workload: HaloWorkload::new(spec),
            platform,
        }
    }

    /// A 2×2×2 topology with 192³-cell subdomains on two streams — the
    /// future-work demonstration configuration.
    pub fn cube2(_seed: u64) -> Self {
        HaloScenario::build(
            HaloSpec {
                topo: RankGrid::new([2, 2, 2]),
                local_n: [192, 192, 192],
                dims: 3,
                model: StencilModel::default(),
            },
            2,
            Platform::perlmutter_like(),
        )
    }

    /// A one-dimensional two-rank instance whose space is enumerable,
    /// for tests.
    pub fn line2(_seed: u64) -> Self {
        HaloScenario::build(
            HaloSpec {
                topo: RankGrid::new([2, 1, 1]),
                local_n: [64, 64, 64],
                dims: 1,
                model: StencilModel::default(),
            },
            2,
            Platform::perlmutter_like(),
        )
    }

    /// Compiles one traversal into an executable program.
    pub fn compile(&self, t: &Traversal) -> Result<CompiledProgram, SimError> {
        let schedule = build_schedule(&self.space, t);
        CompiledProgram::compile(&schedule, &self.workload)
    }

    /// Runs the full measurement protocol on one traversal.
    pub fn benchmark(
        &self,
        t: &Traversal,
        cfg: &BenchConfig,
        seed: u64,
    ) -> Result<BenchResult, SimError> {
        let prog = self.compile(t)?;
        benchmark(&prog, &self.platform, cfg, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_scenario_traversals_execute() {
        let sc = HaloScenario::line2(1);
        let cfg = BenchConfig {
            t_measure: 1e-4,
            num_measurements: 1,
            max_samples: 2,
        };
        let mut prefix = sc.space.empty_prefix();
        let t = sc.space.complete_with(&mut prefix, |_| 0);
        let res = sc.benchmark(&t, &cfg, 3).unwrap();
        assert!(res.time() > 0.0);
    }

    #[test]
    fn cube_scenario_random_traversals_execute() {
        use rand::{Rng, SeedableRng};
        let sc = HaloScenario::cube2(1);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let cfg = BenchConfig {
            t_measure: 1e-4,
            num_measurements: 1,
            max_samples: 2,
        };
        for _ in 0..5 {
            let mut prefix = sc.space.empty_prefix();
            let t = sc
                .space
                .complete_with(&mut prefix, |e| rng.gen_range(0..e.len()));
            let res = sc.benchmark(&t, &cfg, 7).unwrap();
            assert!(res.time() > 0.0);
        }
    }

    #[test]
    fn ordering_matters_in_the_halo_space_too() {
        use rand::{Rng, SeedableRng};
        let sc = HaloScenario::cube2(2);
        let platform = sc.platform.clone().noiseless();
        let sc = HaloScenario { platform, ..sc };
        let cfg = BenchConfig {
            t_measure: 1e-4,
            num_measurements: 1,
            max_samples: 2,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let times: Vec<f64> = (0..24)
            .map(|_| {
                let mut prefix = sc.space.empty_prefix();
                let t = sc
                    .space
                    .complete_with(&mut prefix, |e| rng.gen_range(0..e.len()));
                sc.benchmark(&t, &cfg, 1).unwrap().time()
            })
            .collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        assert!(max / min > 1.05, "spread {min}..{max}");
    }
}
